package netsim

import (
	"testing"

	"repro/internal/sim"
)

func testConfig(nodes int) Config {
	return Config{
		Nodes:      nodes,
		InjRate:    1 * sim.GBps,
		EjeRate:    1 * sim.GBps,
		Latency:    10 * sim.Microsecond,
		MemRate:    10 * sim.GBps,
		MemLatency: 1 * sim.Microsecond,
	}
}

func TestTransferTimeComposition(t *testing.T) {
	k := sim.NewKernel(1)
	f := New(k, testConfig(2))
	var end sim.Time
	k.Spawn("tx", func(p *sim.Proc) {
		f.Node(0).Transfer(p, f.Node(1), 1_000_000) // 1 MB at 1 GB/s = 1 ms each side
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := 2*sim.Millisecond + 10*sim.Microsecond
	if end != want {
		t.Fatalf("transfer end = %v, want %v", end, want)
	}
}

func TestLocalTransferUsesMemoryPath(t *testing.T) {
	k := sim.NewKernel(1)
	f := New(k, testConfig(1))
	var end sim.Time
	k.Spawn("tx", func(p *sim.Proc) {
		f.Node(0).Transfer(p, f.Node(0), 10_000_000) // 10 MB at 10 GB/s = 1 ms
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Millisecond + sim.Microsecond
	if end != want {
		t.Fatalf("local copy end = %v, want %v", end, want)
	}
	if f.Node(0).TxBytes() != 0 {
		t.Fatal("local copy must not use the NIC")
	}
}

func TestSendersContendOnSharedNIC(t *testing.T) {
	k := sim.NewKernel(1)
	f := New(k, testConfig(2))
	var ends []sim.Time
	for i := 0; i < 4; i++ {
		k.Spawn("rank", func(p *sim.Proc) {
			f.Node(0).Transfer(p, f.Node(1), 1_000_000)
			ends = append(ends, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Injection serializes; receiver ejection overlaps with the next
	// sender's injection, so gaps of ~1ms between completions.
	if last := ends[len(ends)-1]; last < 5*sim.Millisecond {
		t.Fatalf("4 MB through a shared 1 GB/s NIC finished too fast: %v", last)
	}
	for i := 1; i < len(ends); i++ {
		if ends[i] <= ends[i-1] {
			t.Fatalf("completions must be strictly ordered: %v", ends)
		}
	}
}

func TestAccountingCounters(t *testing.T) {
	k := sim.NewKernel(1)
	f := New(k, testConfig(3))
	k.Spawn("tx", func(p *sim.Proc) {
		f.Node(0).Transfer(p, f.Node(2), 123)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if f.Node(0).TxBytes() != 123 || f.Node(2).RxBytes() != 123 {
		t.Fatalf("tx=%d rx=%d, want 123/123", f.Node(0).TxBytes(), f.Node(2).RxBytes())
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig(64)
	if cfg.Nodes != 64 || cfg.InjRate <= 0 || cfg.Latency <= 0 {
		t.Fatalf("bad default config: %+v", cfg)
	}
	k := sim.NewKernel(1)
	f := New(k, cfg)
	if f.Nodes() != 64 || f.Latency() != cfg.Latency {
		t.Fatal("fabric does not reflect config")
	}
}

func TestInjectionJitterIsDeterministic(t *testing.T) {
	run := func(seed int64) sim.Time {
		k := sim.NewKernel(seed)
		cfg := testConfig(2)
		cfg.InjJitter = sim.UnitLogNormal(0.2)
		f := New(k, cfg)
		var end sim.Time
		k.Spawn("tx", func(p *sim.Proc) {
			for i := 0; i < 8; i++ {
				f.Node(0).Transfer(p, f.Node(1), 1_000_000)
			}
			end = p.Now()
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	if run(5) != run(5) {
		t.Fatal("same seed must give identical jittered transfers")
	}
	if run(5) == run(6) {
		t.Fatal("different seeds should differ")
	}
}

func TestDegradedLinkSlowsTransfer(t *testing.T) {
	run := func(factor float64) sim.Time {
		k := sim.NewKernel(1)
		f := New(k, testConfig(2))
		if factor != 1 {
			f.Node(0).SetDegraded(factor)
		}
		var end sim.Time
		k.Spawn("tx", func(p *sim.Proc) {
			f.Node(0).Transfer(p, f.Node(1), 10_000_000)
			end = p.Now()
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	healthy, degraded := run(1), run(0.5)
	if degraded <= healthy {
		t.Fatalf("half-speed NIC must slow the transfer: %v vs %v", degraded, healthy)
	}
	// Only the injection side is degraded; ejection runs at full speed, so
	// the 2x stretch applies to roughly half the transfer.
	if degraded >= 2*healthy {
		t.Fatalf("degradation overshoots: %v vs healthy %v", degraded, healthy)
	}
	f2 := New(sim.NewKernel(1), testConfig(1))
	defer func() {
		if recover() == nil {
			t.Fatal("SetDegraded(0) must panic")
		}
	}()
	f2.Node(0).SetDegraded(0)
}

func TestMessageFatePartition(t *testing.T) {
	k := sim.NewKernel(1)
	f := New(k, testConfig(4))
	if f.Partitioned(0, 2) || f.Isolated(0) {
		t.Fatal("fresh fabric must not be partitioned")
	}
	f.SetPartition([]int{0, 1}, true)
	if !f.Partitioned(0, 2) || !f.Partitioned(3, 1) {
		t.Fatal("nodes across the cut must be partitioned")
	}
	if f.Partitioned(0, 1) || f.Partitioned(2, 3) {
		t.Fatal("nodes on the same side must not be partitioned")
	}
	if !f.Node(0).Isolated() || !f.Node(2).Isolated() {
		t.Fatal("both sides of a cut see themselves isolated")
	}
	if got := f.MessageFate(0, 2); got != FatePartition {
		t.Fatalf("fate across the cut = %v, want FatePartition", got)
	}
	if got := f.MessageFate(0, 1); got != FateDeliver {
		t.Fatalf("fate within a side = %v, want FateDeliver", got)
	}
	var flips int
	f.OnChange(func() { flips++ })
	f.SetPartition(nil, false)
	if flips != 1 {
		t.Fatalf("OnChange ran %d times, want 1", flips)
	}
	if f.Partitioned(0, 2) || f.Isolated(3) {
		t.Fatal("healed fabric must not be partitioned")
	}
}

func TestMessageFateLossyAndDup(t *testing.T) {
	k := sim.NewKernel(7)
	f := New(k, testConfig(2))
	// No faults armed: MessageFate must not consume randomness.
	before := k.Rand().Int63()
	k2 := sim.NewKernel(7)
	want := k2.Rand().Int63()
	if before != want {
		t.Fatal("seed mismatch in test setup")
	}
	for i := 0; i < 100; i++ {
		if got := f.MessageFate(0, 1); got != FateDeliver {
			t.Fatalf("fault-free fate = %v, want FateDeliver", got)
		}
	}
	if a, b := k.Rand().Int63(), k2.Rand().Int63(); a != b {
		t.Fatal("fault-free MessageFate consumed randomness")
	}

	f.Node(0).SetLossy(0.5)
	drops := 0
	for i := 0; i < 400; i++ {
		if f.MessageFate(0, 1) == FateDrop {
			drops++
		}
	}
	if drops < 100 || drops > 300 {
		t.Fatalf("p=0.5 lossy link dropped %d/400 messages", drops)
	}
	f.Node(0).SetLossy(0)

	f.Node(0).SetDup(0.5)
	dups := 0
	for i := 0; i < 400; i++ {
		if f.MessageFate(0, 1) == FateDup {
			dups++
		}
	}
	if dups < 100 || dups > 300 {
		t.Fatalf("p=0.5 dup link duplicated %d/400 messages", dups)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("SetLossy(1) must panic")
		}
	}()
	f.Node(0).SetLossy(1)
}
