package store

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/extent"
)

func TestMemStoreRoundTrip(t *testing.T) {
	m := NewMem()
	m.WriteAt([]byte("hello"), 10, 5)
	buf := make([]byte, 5)
	m.ReadAt(buf, 10)
	if string(buf) != "hello" {
		t.Fatalf("read %q", buf)
	}
	if m.Size() != 15 {
		t.Fatalf("size = %d", m.Size())
	}
}

func TestMemStoreHolesReadZero(t *testing.T) {
	m := NewMem()
	m.WriteAt([]byte{1, 2}, 0, 2)
	m.WriteAt([]byte{9}, 10, 1)
	buf := make([]byte, 11)
	m.ReadAt(buf, 0)
	want := []byte{1, 2, 0, 0, 0, 0, 0, 0, 0, 0, 9}
	if !bytes.Equal(buf, want) {
		t.Fatalf("read %v, want %v", buf, want)
	}
}

func TestMemStoreOverwrite(t *testing.T) {
	m := NewMem()
	m.WriteAt([]byte("aaaaaa"), 0, 6)
	m.WriteAt([]byte("BB"), 2, 2)
	buf := make([]byte, 6)
	m.ReadAt(buf, 0)
	if string(buf) != "aaBBaa" {
		t.Fatalf("read %q", buf)
	}
}

func TestMemStoreNilDataWritesZeros(t *testing.T) {
	m := NewMem()
	m.WriteAt([]byte{7, 7, 7}, 0, 3)
	m.WriteAt(nil, 1, 1)
	buf := make([]byte, 3)
	m.ReadAt(buf, 0)
	if !bytes.Equal(buf, []byte{7, 0, 7}) {
		t.Fatalf("read %v", buf)
	}
}

func TestMemStoreTruncate(t *testing.T) {
	m := NewMem()
	m.WriteAt([]byte("abcdef"), 0, 6)
	m.Truncate(3)
	if m.Size() != 3 {
		t.Fatalf("size = %d", m.Size())
	}
	buf := make([]byte, 6)
	m.ReadAt(buf, 0)
	if !bytes.Equal(buf, []byte{'a', 'b', 'c', 0, 0, 0}) {
		t.Fatalf("read %v", buf)
	}
	m.Truncate(100)
	if m.Size() != 100 {
		t.Fatal("growing truncate failed")
	}
}

func TestNullStoreTracksExtentsOnly(t *testing.T) {
	n := NewNull()
	n.WriteAt(nil, 100, 50)
	n.WriteAt(nil, 150, 50)
	if n.Size() != 200 {
		t.Fatalf("size = %d", n.Size())
	}
	w := n.Written()
	if w.Len() != 1 || w.TotalBytes() != 100 {
		t.Fatalf("written = %v", w.Extents())
	}
	buf := []byte{1, 2, 3}
	n.ReadAt(buf, 100)
	if !bytes.Equal(buf, []byte{0, 0, 0}) {
		t.Fatal("null store must read zeros")
	}
}

func TestNullStoreTruncateShrinksExtents(t *testing.T) {
	n := NewNull()
	n.WriteAt(nil, 0, 100)
	n.Truncate(40)
	if n.Size() != 40 || n.Written().TotalBytes() != 40 {
		t.Fatalf("size=%d written=%d", n.Size(), n.Written().TotalBytes())
	}
}

// Property: MemStore matches a flat []byte reference model under random
// writes, and its Written set matches the bytes ever touched.
func TestMemStoreMatchesFlatModel(t *testing.T) {
	const universe = 512
	f := func(seed int64, nOps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewMem()
		ref := make([]byte, universe)
		touched := make([]bool, universe)
		for op := 0; op < int(nOps%30)+3; op++ {
			off := r.Int63n(universe - 1)
			length := r.Int63n(universe/8) + 1
			if off+length > universe {
				length = universe - off
			}
			data := make([]byte, length)
			r.Read(data)
			m.WriteAt(data, off, length)
			copy(ref[off:], data)
			for b := off; b < off+length; b++ {
				touched[b] = true
			}
		}
		got := make([]byte, universe)
		m.ReadAt(got, 0)
		for b := 0; b < universe; b++ {
			want := byte(0)
			if touched[b] {
				want = ref[b]
			}
			if got[b] != want {
				t.Logf("byte %d: got %d want %d", b, got[b], want)
				return false
			}
			if touched[b] != m.Written().Covers(extent.Extent{Off: int64(b), Len: 1}) {
				t.Logf("written set wrong at byte %d", b)
				return false
			}
		}
		return m.Written().Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMem().WriteAt([]byte{1}, 0, 2)
}
