package store

import (
	"testing"

	"repro/internal/extent"
)

func TestChecksummedPreservesPayloadMarker(t *testing.T) {
	if _, ok := NewMemChecksummed().(PayloadBacked); !ok {
		t.Fatal("checksummed MemStore must keep the PayloadBacked marker")
	}
	if _, ok := NewNullChecksummed().(PayloadBacked); ok {
		t.Fatal("checksummed NullStore must not claim payload backing")
	}
}

// A single flipped byte in a payload-backed store must be detected by
// VerifyExtent — the acceptance bar for the whole corruption layer.
func TestChecksumDetectsSingleFlippedByte(t *testing.T) {
	s := NewMemChecksummed()
	integ := s.(Integrity)
	data := make([]byte, 3*ChecksumChunk)
	for i := range data {
		data[i] = byte(i * 7)
	}
	s.WriteAt(data, 0, int64(len(data)))
	if bad := integ.VerifyExtent(extent.Extent{Off: 0, Len: int64(len(data))}); len(bad) != 0 {
		t.Fatalf("clean store verified corrupt: %v", bad)
	}

	integ.CorruptAt(ChecksumChunk+5, 1)
	bad := integ.VerifyExtent(extent.Extent{Off: 0, Len: int64(len(data))})
	if len(bad) == 0 {
		t.Fatal("flipped byte not detected")
	}
	for _, b := range bad {
		if !b.Contains(ChecksumChunk + 5) {
			t.Fatalf("corrupt range %v misses the flipped byte", b)
		}
	}
	// The flip really changed the stored content.
	buf := make([]byte, 1)
	s.ReadAt(buf, ChecksumChunk+5)
	if buf[0] == data[ChecksumChunk+5] {
		t.Fatal("CorruptAt did not change the stored byte")
	}
	// Untouched chunks stay clean.
	if got := integ.VerifyExtent(extent.Extent{Off: 0, Len: ChecksumChunk}); len(got) != 0 {
		t.Fatalf("untouched chunk flagged corrupt: %v", got)
	}
}

func TestChecksumRewriteHeals(t *testing.T) {
	s := NewMemChecksummed()
	integ := s.(Integrity)
	data := make([]byte, 2*ChecksumChunk)
	for i := range data {
		data[i] = byte(i)
	}
	s.WriteAt(data, 0, int64(len(data)))
	integ.CorruptAt(10, 4)
	if len(integ.VerifyExtent(extent.Extent{Off: 0, Len: ChecksumChunk})) == 0 {
		t.Fatal("corruption not detected before the heal")
	}
	s.WriteAt(data[:ChecksumChunk], 0, ChecksumChunk)
	if bad := integ.VerifyExtent(extent.Extent{Off: 0, Len: 2 * ChecksumChunk}); len(bad) != 0 {
		t.Fatalf("rewrite did not heal: %v", bad)
	}
	buf := make([]byte, 4)
	s.ReadAt(buf, 10)
	for i, b := range buf {
		if b != data[10+i] {
			t.Fatalf("healed byte %d = %#x, want %#x", 10+i, b, data[10+i])
		}
	}
}

// The payload-free wrapper answers from its ledger so huge runs never
// hold bytes: corruption is tracked per extent and healed by rewrites.
func TestChecksumNullLedger(t *testing.T) {
	s := NewNullChecksummed()
	integ := s.(Integrity)
	s.WriteAt(nil, 0, 1<<20)
	if bad := integ.VerifyExtent(extent.Extent{Off: 0, Len: 1 << 20}); len(bad) != 0 {
		t.Fatalf("clean ledger reports %v", bad)
	}
	integ.CorruptAt(4096, 100)
	bad := integ.VerifyExtent(extent.Extent{Off: 0, Len: 1 << 20})
	if len(bad) != 1 || bad[0].Off != 4096 || bad[0].Len != 100 {
		t.Fatalf("ledger = %v, want [{4096 100}]", bad)
	}
	// Verification windows clip to the queried extent.
	bad = integ.VerifyExtent(extent.Extent{Off: 4140, Len: 1 << 10})
	if len(bad) != 1 || bad[0].Off != 4140 || bad[0].Len != 56 {
		t.Fatalf("clipped ledger = %v, want [{4140 56}]", bad)
	}
	s.WriteAt(nil, 4096, 4096)
	if bad := integ.VerifyExtent(extent.Extent{Off: 0, Len: 1 << 20}); len(bad) != 0 {
		t.Fatalf("rewrite did not heal the ledger: %v", bad)
	}
	if s.Size() != 1<<20 || s.Written().TotalBytes() != 1<<20 {
		t.Fatalf("delegation broken: size=%d written=%d", s.Size(), s.Written().TotalBytes())
	}
}

func TestChecksumTruncateDropsState(t *testing.T) {
	s := NewMemChecksummed()
	integ := s.(Integrity)
	data := make([]byte, 2*ChecksumChunk)
	for i := range data {
		data[i] = byte(i % 251)
	}
	s.WriteAt(data, 0, int64(len(data)))
	integ.CorruptAt(ChecksumChunk+1, 1)
	s.Truncate(ChecksumChunk / 2)
	if bad := integ.VerifyExtent(extent.Extent{Off: 0, Len: 2 * ChecksumChunk}); len(bad) != 0 {
		t.Fatalf("truncated-away corruption still reported: %v", bad)
	}
	// Content before the cut still matches its (re-hashed) checksum.
	s.WriteAt(data[:16], 0, 16)
	if bad := integ.VerifyExtent(extent.Extent{Off: 0, Len: ChecksumChunk}); len(bad) != 0 {
		t.Fatalf("boundary chunk broken after truncate: %v", bad)
	}
}
