// Package store provides the byte-payload backends used by the simulated
// file systems. MemStore keeps real data so integration tests can assert
// byte-exact end-to-end correctness of the collective write and cache flush
// paths; NullStore tracks only written extents so the 32 GB evaluation runs
// execute the identical control flow without allocating payload memory.
package store

import (
	"fmt"

	"repro/internal/extent"
)

// Store records the logical content of one file.
type Store interface {
	// WriteAt records a write of length len(data) bytes, or of size bytes
	// when data is nil (metadata-only write).
	WriteAt(data []byte, off, size int64)
	// ReadAt fills buf from the store. Bytes never written read as zero.
	// Metadata-only stores return zeros for all content.
	ReadAt(buf []byte, off int64)
	// Written returns the set of extents ever written.
	Written() *extent.Set
	// Size returns the file size (highest written offset, or the size set
	// by Truncate, whichever is larger).
	Size() int64
	// Truncate sets the file size; shrinking discards content beyond size.
	Truncate(size int64)
}

// Factory creates a Store for a newly created file.
type Factory func() Store

// PayloadBacked marks stores that hold real bytes (MemStore); consumers use
// it to decide whether reading back content is meaningful.
type PayloadBacked interface{ payloadBacked() }

func (m *MemStore) payloadBacked() {}

// NewMem is a Factory for MemStore.
func NewMem() Store { return &MemStore{} }

// NewNull is a Factory for NullStore.
func NewNull() Store { return &NullStore{} }

// MemStore holds real file bytes in coalesced chunks.
type MemStore struct {
	chunks  []memChunk // sorted by off, non-overlapping
	written extent.Set
	size    int64
}

type memChunk struct {
	off  int64
	data []byte
}

// WriteAt implements Store.
func (m *MemStore) WriteAt(data []byte, off, size int64) {
	if data == nil {
		data = make([]byte, size)
	}
	if int64(len(data)) != size {
		panic(fmt.Sprintf("store: data length %d != size %d", len(data), size))
	}
	if size == 0 {
		return
	}
	m.written.Add(extent.Extent{Off: off, Len: size})
	if off+size > m.size {
		m.size = off + size
	}
	// Simple approach: collect overlapping chunks, merge into one buffer.
	e := extent.Extent{Off: off, Len: size}
	var keep []memChunk
	lo, hi := off, off+size
	var overlapping []memChunk
	for _, c := range m.chunks {
		ce := extent.Extent{Off: c.off, Len: int64(len(c.data))}
		if ce.Overlaps(e) || ce.End() == e.Off || e.End() == ce.Off {
			overlapping = append(overlapping, c)
			if c.off < lo {
				lo = c.off
			}
			if ce.End() > hi {
				hi = ce.End()
			}
		} else {
			keep = append(keep, c)
		}
	}
	buf := make([]byte, hi-lo)
	for _, c := range overlapping {
		copy(buf[c.off-lo:], c.data)
	}
	copy(buf[off-lo:], data)
	keep = append(keep, memChunk{off: lo, data: buf})
	// Restore sort order.
	for i := len(keep) - 1; i > 0 && keep[i].off < keep[i-1].off; i-- {
		keep[i], keep[i-1] = keep[i-1], keep[i]
	}
	m.chunks = keep
}

// ReadAt implements Store.
func (m *MemStore) ReadAt(buf []byte, off int64) {
	for i := range buf {
		buf[i] = 0
	}
	e := extent.Extent{Off: off, Len: int64(len(buf))}
	for _, c := range m.chunks {
		ce := extent.Extent{Off: c.off, Len: int64(len(c.data))}
		ov := ce.Intersect(e)
		if ov.Empty() {
			continue
		}
		copy(buf[ov.Off-off:ov.Off-off+ov.Len], c.data[ov.Off-c.off:])
	}
}

// Written implements Store.
func (m *MemStore) Written() *extent.Set { return &m.written }

// Size implements Store.
func (m *MemStore) Size() int64 { return m.size }

// Truncate implements Store.
func (m *MemStore) Truncate(size int64) {
	if size >= m.size {
		m.size = size
		return
	}
	m.size = size
	m.written.Remove(extent.Extent{Off: size, Len: 1<<62 - size})
	var keep []memChunk
	for _, c := range m.chunks {
		end := c.off + int64(len(c.data))
		switch {
		case end <= size:
			keep = append(keep, c)
		case c.off >= size:
			// dropped
		default:
			keep = append(keep, memChunk{off: c.off, data: c.data[:size-c.off]})
		}
	}
	m.chunks = keep
}

// NullStore tracks only extents and size; content reads as zero.
type NullStore struct {
	written extent.Set
	size    int64
}

// WriteAt implements Store.
func (n *NullStore) WriteAt(data []byte, off, size int64) {
	if data != nil && int64(len(data)) != size {
		panic(fmt.Sprintf("store: data length %d != size %d", len(data), size))
	}
	if size == 0 {
		return
	}
	n.written.Add(extent.Extent{Off: off, Len: size})
	if off+size > n.size {
		n.size = off + size
	}
}

// ReadAt implements Store.
func (n *NullStore) ReadAt(buf []byte, off int64) {
	for i := range buf {
		buf[i] = 0
	}
}

// Written implements Store.
func (n *NullStore) Written() *extent.Set { return &n.written }

// Size implements Store.
func (n *NullStore) Size() int64 { return n.size }

// Truncate implements Store.
func (n *NullStore) Truncate(size int64) {
	if size < n.size {
		n.written.Remove(extent.Extent{Off: size, Len: 1<<62 - size})
	}
	n.size = size
}
