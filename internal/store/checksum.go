package store

import (
	"hash/crc32"

	"repro/internal/extent"
)

// ChecksumChunk is the integrity granularity: payload-backed stores keep
// one CRC per aligned 4 KB chunk, and injected corruption is tracked at
// the same grain.
const ChecksumChunk int64 = 4 << 10

// crcTable is CRC-32C (Castagnoli), the checksum NVM-aware storage stacks
// use for at-rest data.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Integrity is the verification surface of a checksummed store: scrub
// paths use VerifyExtent to find corrupt subranges, fault injection uses
// CorruptAt to plant them. Both are pure bookkeeping — neither charges
// simulated device time.
type Integrity interface {
	// VerifyExtent returns the corrupt subranges of e (empty when e is
	// clean). On a payload-backed store the content is re-hashed against
	// the per-chunk CRCs; on a payload-free store the corruption ledger
	// answers, so 32 GB runs verify without holding bytes.
	VerifyExtent(e extent.Extent) []extent.Extent
	// CorruptAt flips n bytes at off (payload-backed: the stored bytes
	// really change, bypassing the checksum update; payload-free: the
	// range is marked in the ledger). A later WriteAt over the range
	// heals it.
	CorruptAt(off, n int64)
}

// ChecksumStore wraps a Store with per-chunk CRCs (payload-backed inner)
// or an extent-granularity corruption ledger (payload-free inner). All
// Store methods delegate; the wrapper adds zero simulated time.
type ChecksumStore struct {
	inner   Store
	payload bool
	sums    map[int64]uint32 // chunk index -> CRC-32C of the aligned chunk
	bad     extent.Set       // injected-corruption ledger
}

// memChecksumStore preserves the PayloadBacked marker of a wrapped
// MemStore so consumers that branch on payload presence keep working.
type memChecksumStore struct{ *ChecksumStore }

func (m *memChecksumStore) payloadBacked() {}

// NewMemChecksummed is a Factory for a checksummed MemStore.
func NewMemChecksummed() Store { return Checksummed(NewMem()) }

// NewNullChecksummed is a Factory for a checksummed NullStore.
func NewNullChecksummed() Store { return Checksummed(NewNull()) }

// Checksummed wraps inner with integrity tracking. A payload-backed inner
// keeps its PayloadBacked marker.
func Checksummed(inner Store) Store {
	cs := &ChecksumStore{inner: inner, sums: map[int64]uint32{}}
	if _, ok := inner.(PayloadBacked); ok {
		cs.payload = true
		return &memChecksumStore{cs}
	}
	return cs
}

// WriteAt implements Store; a write over a corrupt range heals it.
func (cs *ChecksumStore) WriteAt(data []byte, off, size int64) {
	cs.inner.WriteAt(data, off, size)
	if size <= 0 {
		return
	}
	if cs.bad.Len() > 0 {
		cs.bad.Remove(extent.Extent{Off: off, Len: size})
	}
	if cs.payload {
		cs.rehash(off, off+size)
	}
}

// rehash recomputes the CRCs of every chunk touching [lo, hi).
func (cs *ChecksumStore) rehash(lo, hi int64) {
	buf := make([]byte, ChecksumChunk)
	for ci := lo / ChecksumChunk; ci <= (hi-1)/ChecksumChunk; ci++ {
		cs.inner.ReadAt(buf, ci*ChecksumChunk)
		cs.sums[ci] = crc32.Checksum(buf, crcTable)
	}
}

// ReadAt implements Store.
func (cs *ChecksumStore) ReadAt(buf []byte, off int64) { cs.inner.ReadAt(buf, off) }

// Written implements Store.
func (cs *ChecksumStore) Written() *extent.Set { return cs.inner.Written() }

// Size implements Store.
func (cs *ChecksumStore) Size() int64 { return cs.inner.Size() }

// Truncate implements Store.
func (cs *ChecksumStore) Truncate(size int64) {
	old := cs.inner.Size()
	cs.inner.Truncate(size)
	if size >= old {
		return
	}
	cs.bad.Remove(extent.Extent{Off: size, Len: 1<<62 - size})
	if cs.payload {
		for ci := size / ChecksumChunk; ci <= (old-1)/ChecksumChunk; ci++ {
			delete(cs.sums, ci)
		}
		if size%ChecksumChunk != 0 {
			cs.rehash(size-1, size) // boundary chunk keeps a valid sum
		}
	}
}

// CorruptAt implements Integrity.
func (cs *ChecksumStore) CorruptAt(off, n int64) {
	if n <= 0 {
		return
	}
	cs.bad.Add(extent.Extent{Off: off, Len: n})
	if !cs.payload {
		return
	}
	// Really flip the stored bytes, bypassing the checksum update, so a
	// re-hash sees a genuine mismatch.
	buf := make([]byte, n)
	cs.inner.ReadAt(buf, off)
	for i := range buf {
		buf[i] ^= 0xFF
	}
	cs.inner.WriteAt(buf, off, n)
}

// VerifyExtent implements Integrity.
func (cs *ChecksumStore) VerifyExtent(e extent.Extent) []extent.Extent {
	if e.Empty() {
		return nil
	}
	var out extent.Set
	for _, b := range cs.bad.Extents() {
		if ov := b.Intersect(e); !ov.Empty() {
			out.Add(ov)
		}
	}
	if cs.payload {
		buf := make([]byte, ChecksumChunk)
		for ci := e.Off / ChecksumChunk; ci <= (e.End()-1)/ChecksumChunk; ci++ {
			want, ok := cs.sums[ci]
			if !ok {
				continue // never written through the wrapper
			}
			cs.inner.ReadAt(buf, ci*ChecksumChunk)
			if crc32.Checksum(buf, crcTable) == want {
				continue
			}
			if ov := (extent.Extent{Off: ci * ChecksumChunk, Len: ChecksumChunk}).Intersect(e); !ov.Empty() {
				out.Add(ov)
			}
		}
	}
	return out.Extents()
}
