// Package pfs models the global parallel file system (BeeGFS on the DEEP-ER
// cluster, §IV-A): a metadata server plus a set of data targets over which
// file contents are striped. Each target is a FIFO queueing station with a
// per-RPC latency, a stream rate, and log-normal service-time jitter that
// reproduces the I/O-server load imbalance responsible for the paper's
// slowest-writer synchronisation costs.
//
// Clients (one per compute node) push data in bounded-size RPCs through a
// per-client throughput cap — modelling the file-system client stack — and
// through the node's NIC, so file-system traffic and MPI traffic contend
// for the same injection bandwidth, exactly as on the real machine.
package pfs

import (
	"errors"
	"fmt"

	"repro/internal/extent"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/trace"
)

// Errors returned by the file system.
var (
	ErrNotFound    = errors.New("pfs: file not found")
	ErrExists      = errors.New("pfs: file exists")
	ErrTargetDown  = errors.New("pfs: storage target unreachable")
	ErrPartitioned = errors.New("pfs: client partitioned from storage fabric")
)

// Config describes a parallel file system instance.
type Config struct {
	Targets            int      // number of data targets (OSTs)
	TargetRate         sim.Rate // per-target stream rate
	TargetLatency      sim.Time // per-RPC service latency at a target
	TargetJitter       sim.Dist // per-RPC jitter (load imbalance)
	ClientRate         sim.Rate // per-client throughput cap
	ClientRPCLatency   sim.Time // client-side per-RPC overhead
	MaxRPC             int64    // maximum payload bytes per RPC
	MetaLatency        sim.Time // metadata operation latency
	DefaultStripeSize  int64    // stripe unit for new files
	DefaultStripeCount int      // stripe width for new files
	LockGranularity    int64    // >0: writes take whole-block write locks
}

// DefaultConfig approximates the paper's BeeGFS deployment: four data
// targets of ~500 MB/s (≈2 GB/s aggregate), 4 MB stripes, stripe count 4.
func DefaultConfig() Config {
	return Config{
		Targets:            4,
		TargetRate:         640 * sim.MBps,
		TargetLatency:      600 * sim.Microsecond,
		TargetJitter:       sim.UnitLogNormal(0.45),
		ClientRate:         400 * sim.MBps,
		ClientRPCLatency:   1200 * sim.Microsecond,
		MaxRPC:             2 << 20, // 2 MB
		MetaLatency:        400 * sim.Microsecond,
		DefaultStripeSize:  4 << 20,
		DefaultStripeCount: 4,
	}
}

// Striping captures a file's layout.
type Striping struct {
	StripeSize  int64 // bytes per stripe unit
	StripeCount int   // number of targets the file spans
	FirstTarget int   // index of the target holding stripe 0
}

// System is one parallel file system instance.
type System struct {
	k       *sim.Kernel
	cfg     Config
	targets []*sim.Station
	tstate  []targetState
	meta    *sim.Station
	files   map[string]*FileMeta
	factory store.Factory
	Locks   *LockManager
	nextTgt int

	// Per-target metric handles, registered lazily.
	mTgtNs    []*metrics.Histogram
	mTgtBytes []*metrics.Counter
	mTimeouts *metrics.Counter
	mMetaOps  *metrics.Counter
}

// targetMetrics resolves (and caches) the handles for target i, returning
// (nil, nil) when metrics are disabled.
func (s *System) targetMetrics(i int) (*metrics.Histogram, *metrics.Counter) {
	m := s.k.Metrics()
	if m == nil {
		return nil, nil
	}
	if s.mTgtNs == nil {
		s.mTgtNs = make([]*metrics.Histogram, len(s.targets))
		s.mTgtBytes = make([]*metrics.Counter, len(s.targets))
	}
	if s.mTgtNs[i] == nil {
		layer := metrics.L(metrics.KeyLayer, "pfs")
		tgt := metrics.L("target", fmt.Sprintf("tgt%d", i))
		s.mTgtNs[i] = m.Histogram("pfs_target_ns", layer, tgt)
		s.mTgtBytes[i] = m.Counter("pfs_target_bytes_total", layer, tgt)
	}
	return s.mTgtNs[i], s.mTgtBytes[i]
}

// metaServe charges one metadata round trip and counts it.
func (s *System) metaServe(p *sim.Proc) {
	s.meta.Serve(p, s.cfg.MetaLatency)
	if m := s.k.Metrics(); m != nil {
		if s.mMetaOps == nil {
			s.mMetaOps = m.Counter("pfs_meta_ops_total", metrics.L(metrics.KeyLayer, "pfs"))
		}
		s.mMetaOps.Inc()
	}
}

// targetState is the injected health of one data target.
type targetState struct {
	down  bool
	speed float64 // service speed factor in (0, 1]; 1 = nominal
}

// New creates a file system. factory selects the payload backend for newly
// created files.
func New(k *sim.Kernel, cfg Config, factory store.Factory) *System {
	if cfg.Targets < 1 {
		panic("pfs: need at least one target")
	}
	if cfg.MaxRPC <= 0 {
		panic("pfs: MaxRPC must be positive")
	}
	s := &System{
		k:       k,
		cfg:     cfg,
		meta:    sim.NewStation(k, "pfs.meta", 1),
		files:   make(map[string]*FileMeta),
		factory: factory,
		Locks:   NewLockManager(k),
	}
	for i := 0; i < cfg.Targets; i++ {
		s.targets = append(s.targets, sim.NewStation(k, fmt.Sprintf("pfs.tgt%d", i), 1))
		s.tstate = append(s.tstate, targetState{speed: 1})
	}
	return s
}

// SetTargetDown marks target i unreachable (or restores it): RPCs touching
// the target fail with ErrTargetDown after the RPC latency elapses, like a
// timed-out storage server.
func (s *System) SetTargetDown(i int, down bool) {
	s.tstate[i].down = down
}

// TargetDown reports whether target i is marked unreachable.
func (s *System) TargetDown(i int) bool { return s.tstate[i].down }

// SetTargetSpeed scales target i's service rate to factor (in (0, 1]) of
// nominal, modelling a transiently overloaded or rebuilding storage server.
func (s *System) SetTargetSpeed(i int, factor float64) {
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("pfs: target speed factor %v outside (0, 1]", factor))
	}
	s.tstate[i].speed = factor
}

// TargetSpeed returns target i's current service speed factor.
func (s *System) TargetSpeed(i int) float64 { return s.tstate[i].speed }

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// TotalBytesWritten returns the bytes stored across all targets.
func (s *System) TotalBytesWritten() int64 {
	var n int64
	for _, t := range s.targets {
		n += t.Bytes
	}
	return n
}

// TargetUtilization returns each data target's busy fraction over the
// given horizon.
func (s *System) TargetUtilization(horizon sim.Time) []float64 {
	out := make([]float64, len(s.targets))
	for i, t := range s.targets {
		out[i] = t.Utilization(horizon)
	}
	return out
}

// TargetBytes returns each data target's stored byte count.
func (s *System) TargetBytes() []int64 {
	out := make([]int64, len(s.targets))
	for i, t := range s.targets {
		out[i] = t.Bytes
	}
	return out
}

// MetaOps returns the number of metadata operations served.
func (s *System) MetaOps() int64 { return s.meta.Served }

// Lookup returns the metadata of an existing file, or nil.
func (s *System) Lookup(name string) *FileMeta {
	return s.files[name]
}

// FileMeta is the per-file state held by the metadata server.
type FileMeta struct {
	name     string
	striping Striping
	data     store.Store
}

// Name returns the file name.
func (f *FileMeta) Name() string { return f.name }

// Striping returns the file layout.
func (f *FileMeta) Striping() Striping { return f.striping }

// Size returns the current file size.
func (f *FileMeta) Size() int64 { return f.data.Size() }

// Store exposes the payload backend for verification in tests.
func (f *FileMeta) Store() store.Store { return f.data }

// Client is a compute node's view of the file system.
type Client struct {
	sys  *System
	node *netsim.Node
	cap  *sim.Station // per-client throughput cap

	// Statistics.
	BytesWritten int64
	BytesRead    int64
}

// NewClient creates the client for one compute node.
func (s *System) NewClient(node *netsim.Node) *Client {
	return &Client{
		sys:  s,
		node: node,
		cap:  sim.NewStation(s.k, fmt.Sprintf("pfs.client.n%d", node.ID()), 1),
	}
}

// Open opens (optionally creating) a file with the given striping; a zero
// Striping takes the system defaults. The metadata server is charged.
func (c *Client) Open(p *sim.Proc, name string, create bool, striping Striping) (*Handle, error) {
	s := c.sys
	s.metaServe(p)
	f, ok := s.files[name]
	if !ok {
		if !create {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		if striping.StripeSize <= 0 {
			striping.StripeSize = s.cfg.DefaultStripeSize
		}
		if striping.StripeCount <= 0 {
			striping.StripeCount = s.cfg.DefaultStripeCount
		}
		if striping.StripeCount > s.cfg.Targets {
			striping.StripeCount = s.cfg.Targets
		}
		striping.FirstTarget = s.nextTgt % s.cfg.Targets
		s.nextTgt++
		f = &FileMeta{name: name, striping: striping, data: s.factory()}
		s.files[name] = f
	}
	return &Handle{client: c, meta: f}, nil
}

// Unlink removes a file.
func (c *Client) Unlink(p *sim.Proc, name string) error {
	s := c.sys
	s.metaServe(p)
	if _, ok := s.files[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	delete(s.files, name)
	return nil
}

// Handle is an open file on a particular client.
type Handle struct {
	client *Client
	meta   *FileMeta
}

// Meta returns the file metadata.
func (h *Handle) Meta() *FileMeta { return h.meta }

// Close releases the handle (one metadata round trip).
func (h *Handle) Close(p *sim.Proc) {
	s := h.client.sys
	s.metaServe(p)
}

// targetFor returns the target index storing the stripe containing off.
func (h *Handle) targetFor(off int64) int {
	st := h.meta.striping
	stripe := off / st.StripeSize
	return (st.FirstTarget + int(stripe%int64(st.StripeCount))) % h.client.sys.cfg.Targets
}

// rpc is one bounded transfer to or from a single target.
type rpc struct {
	target int
	ext    extent.Extent
}

// planRPCs splits [off, off+size) into per-target RPCs of at most MaxRPC
// bytes, never crossing a stripe boundary.
func (h *Handle) planRPCs(off, size int64) []rpc {
	var out []rpc
	st := h.meta.striping
	cur := off
	end := off + size
	for cur < end {
		stripeEnd := (cur/st.StripeSize + 1) * st.StripeSize
		chunkEnd := min64(end, stripeEnd)
		tgt := h.targetFor(cur)
		for cur < chunkEnd {
			n := min64(h.client.sys.cfg.MaxRPC, chunkEnd-cur)
			out = append(out, rpc{target: tgt, ext: extent.Extent{Off: cur, Len: n}})
			cur += n
		}
	}
	return out
}

// WriteAt writes size bytes at off. data may be nil for metadata-only
// payloads. The client streams to each involved target in parallel while
// the per-client cap and the node NIC serialize the client side, modelling
// a pipelined file-system client. Blocks p until all data is stored. A
// down target fails the whole write with ErrTargetDown; no payload is
// committed in that case.
func (h *Handle) WriteAt(p *sim.Proc, data []byte, off, size int64) error {
	if size == 0 {
		return nil
	}
	s := h.client.sys
	var lock *Lock
	if g := s.cfg.LockGranularity; g > 0 {
		lo := off / g * g
		hi := (off + size + g - 1) / g * g
		lock = s.Locks.Acquire(p, h.meta.name, WriteLock, extent.Extent{Off: lo, Len: hi - lo})
	}
	err := h.transfer(p, data, off, size, true)
	if lock != nil {
		s.Locks.Unlock(lock)
	}
	if err != nil {
		return err
	}
	h.client.BytesWritten += size
	return nil
}

// ReadAt reads into buf (or size bytes metadata-only when buf is nil).
func (h *Handle) ReadAt(p *sim.Proc, buf []byte, off, size int64) error {
	if buf != nil {
		size = int64(len(buf))
	}
	if size == 0 {
		return nil
	}
	if err := h.transfer(p, nil, off, size, false); err != nil {
		return err
	}
	if buf != nil {
		h.meta.data.ReadAt(buf, off)
	}
	h.client.BytesRead += size
	return nil
}

// transfer moves the byte range between client and targets, blocking p.
// On error the payload is not committed; the first failing target (in
// stripe order) determines the returned error, keeping runs deterministic.
func (h *Handle) transfer(p *sim.Proc, data []byte, off, size int64, isWrite bool) error {
	s := h.client.sys
	rpcs := h.planRPCs(off, size)
	// Group RPCs by target and run one pipelined stream per target.
	byTarget := make(map[int][]rpc)
	order := make([]int, 0, 4)
	for _, r := range rpcs {
		if _, ok := byTarget[r.target]; !ok {
			order = append(order, r.target)
		}
		byTarget[r.target] = append(byTarget[r.target], r)
	}
	k := s.k
	if len(order) == 1 {
		// Single-target fast path: stream inline on the calling process.
		if err := h.stream(p, byTarget[order[0]], isWrite); err != nil {
			return err
		}
		if isWrite {
			h.meta.data.WriteAt(data, off, size)
		}
		return nil
	}
	remaining := len(order)
	errs := make([]error, len(order))
	done := sim.NewCond(k)
	for oi, tgt := range order {
		oi, chunks := oi, byTarget[tgt]
		k.Spawn(fmt.Sprintf("pfs.stream.n%d.t%d", h.client.node.ID(), tgt), func(sp *sim.Proc) {
			errs[oi] = h.stream(sp, chunks, isWrite)
			remaining--
			if remaining == 0 {
				done.Signal()
			}
		})
	}
	if remaining > 0 {
		done.Wait(p)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if isWrite {
		h.meta.data.WriteAt(data, off, size)
	}
	return nil
}

// stream pushes one target's chunk list through the client stack, NIC and
// target station, serialized per chunk (a pipelined RPC stream). A chunk
// addressed to a down target burns the RPC latency waiting for the timeout
// and aborts the stream; a slowed target stretches its service time.
func (h *Handle) stream(sp *sim.Proc, chunks []rpc, isWrite bool) error {
	s := h.client.sys
	for _, r := range chunks {
		// A partitioned client cannot reach any target: the RPC burns the
		// client stack latency plus the target-side timeout and fails with
		// ErrPartitioned, which (unlike ErrTargetDown) heals when the
		// partition does — callers may retry without consuming their fault
		// budget.
		if h.client.node.Isolated() {
			sp.Sleep(s.cfg.ClientRPCLatency + s.cfg.TargetLatency)
			return fmt.Errorf("%w: node %d", ErrPartitioned, h.client.node.ID())
		}
		// Client-side stack (shared cap) then NIC, then target.
		h.client.cap.ServeBytes(sp, s.cfg.ClientRPCLatency, s.cfg.ClientRate, r.ext.Len)
		if isWrite {
			h.client.node.Inject(sp, r.ext.Len)
		}
		sp.Sleep(2 * sim.Microsecond) // fabric hop to storage
		ts := s.tstate[r.target]
		if ts.down {
			sp.Sleep(s.cfg.TargetLatency) // RPC timeout
			if tr := s.k.Tracer(); tr != nil {
				tr.Instant(s.targets[r.target].TraceTrack(tr), "pfs", "rpc_timeout",
					int64(sp.Now()), trace.I("bytes", r.ext.Len))
			}
			if m := s.k.Metrics(); m != nil {
				if s.mTimeouts == nil {
					s.mTimeouts = m.Counter("pfs_rpc_timeouts_total", metrics.L(metrics.KeyLayer, "pfs"))
				}
				s.mTimeouts.Inc()
			}
			return fmt.Errorf("%w: tgt%d", ErrTargetDown, r.target)
		}
		d := s.cfg.TargetLatency + s.cfg.TargetRate.DurationFor(r.ext.Len)
		d = sim.Jitter(s.k.Rand(), s.cfg.TargetJitter, d)
		if ts.speed != 1 {
			d = sim.Time(float64(d) / ts.speed)
		}
		st := s.targets[r.target]
		if tgtNs, tgtBytes := s.targetMetrics(r.target); tgtNs != nil {
			t0 := sp.Now()
			st.Serve(sp, d)
			tgtNs.Observe(int64(sp.Now() - t0))
			tgtBytes.Add(r.ext.Len)
		} else {
			st.Serve(sp, d)
		}
		st.Bytes += r.ext.Len
		if !isWrite {
			h.client.node.Eject(sp, r.ext.Len)
		}
	}
	return nil
}

// Sync charges a metadata round trip (data is written through in this
// model, so sync has no additional data cost).
func (h *Handle) Sync(p *sim.Proc) {
	s := h.client.sys
	s.metaServe(p)
}

// Truncate sets the file size (one metadata round trip).
func (h *Handle) Truncate(p *sim.Proc, size int64) {
	s := h.client.sys
	s.metaServe(p)
	h.meta.data.Truncate(size)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
