package pfs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/extent"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/store"
)

func testSystem(k *sim.Kernel, targets int) (*System, *netsim.Fabric) {
	cfg := Config{
		Targets:            targets,
		TargetRate:         100 * sim.MBps,
		TargetLatency:      100 * sim.Microsecond,
		ClientRate:         1000 * sim.MBps,
		ClientRPCLatency:   10 * sim.Microsecond,
		MaxRPC:             1 << 20,
		MetaLatency:        100 * sim.Microsecond,
		DefaultStripeSize:  1 << 20,
		DefaultStripeCount: targets,
	}
	f := netsim.New(k, netsim.Config{
		Nodes: 4, InjRate: 10 * sim.GBps, EjeRate: 10 * sim.GBps,
		Latency: sim.Microsecond, MemRate: 10 * sim.GBps,
	})
	return New(k, cfg, store.NewMem), f
}

func TestOpenCreateLookup(t *testing.T) {
	k := sim.NewKernel(1)
	s, f := testSystem(k, 4)
	c := s.NewClient(f.Node(0))
	k.Spawn("client", func(p *sim.Proc) {
		if _, err := c.Open(p, "missing", false, Striping{}); !errors.Is(err, ErrNotFound) {
			t.Errorf("want ErrNotFound, got %v", err)
		}
		h, err := c.Open(p, "f", true, Striping{StripeSize: 1 << 20, StripeCount: 2})
		if err != nil {
			t.Error(err)
			return
		}
		if got := h.Meta().Striping(); got.StripeSize != 1<<20 || got.StripeCount != 2 {
			t.Errorf("striping = %+v", got)
		}
		h2, err := c.Open(p, "f", false, Striping{})
		if err != nil || h2.Meta() != h.Meta() {
			t.Error("reopen must see the same file")
		}
		h.Close(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadRoundTripAcrossStripes(t *testing.T) {
	k := sim.NewKernel(1)
	s, f := testSystem(k, 4)
	c := s.NewClient(f.Node(0))
	k.Spawn("client", func(p *sim.Proc) {
		h, err := c.Open(p, "f", true, Striping{StripeSize: 4096, StripeCount: 4})
		if err != nil {
			t.Error(err)
			return
		}
		data := make([]byte, 20000) // crosses several stripes
		for i := range data {
			data[i] = byte(i % 251)
		}
		h.WriteAt(p, data, 1000, int64(len(data)))
		buf := make([]byte, len(data))
		h.ReadAt(p, buf, 1000, 0)
		if !bytes.Equal(buf, data) {
			t.Error("round trip mismatch")
		}
		if h.Meta().Size() != 21000 {
			t.Errorf("size = %d", h.Meta().Size())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStripingUsesMultipleTargetsInParallel(t *testing.T) {
	run := func(stripeCount int) sim.Time {
		k := sim.NewKernel(1)
		s, f := testSystem(k, 4)
		c := s.NewClient(f.Node(0))
		var end sim.Time
		k.Spawn("client", func(p *sim.Proc) {
			h, _ := c.Open(p, "f", true, Striping{StripeSize: 1 << 20, StripeCount: stripeCount})
			h.WriteAt(p, nil, 0, 64<<20)
			end = p.Now()
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	wide, narrow := run(4), run(1)
	if wide >= narrow {
		t.Fatalf("stripe-count 4 (%v) must beat stripe-count 1 (%v)", wide, narrow)
	}
}

func TestRPCPlanRespectsStripeAndMaxRPC(t *testing.T) {
	k := sim.NewKernel(1)
	s, f := testSystem(k, 4)
	c := s.NewClient(f.Node(0))
	k.Spawn("client", func(p *sim.Proc) {
		h, _ := c.Open(p, "f", true, Striping{StripeSize: 1 << 21, StripeCount: 4})
		rpcs := h.planRPCs(100, 5<<20)
		var total int64
		for i, r := range rpcs {
			if r.ext.Len > s.cfg.MaxRPC {
				t.Errorf("rpc %d exceeds MaxRPC: %d", i, r.ext.Len)
			}
			first := r.ext.Off / (1 << 21)
			last := (r.ext.End() - 1) / (1 << 21)
			if first != last {
				t.Errorf("rpc %d crosses a stripe boundary: %v", i, r.ext)
			}
			if want := h.targetFor(r.ext.Off); r.target != want {
				t.Errorf("rpc %d routed to %d, want %d", i, r.target, want)
			}
			total += r.ext.Len
		}
		if total != 5<<20 {
			t.Errorf("rpcs cover %d bytes, want %d", total, 5<<20)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanCoversRangeProperty(t *testing.T) {
	k := sim.NewKernel(1)
	s, fb := testSystem(k, 3)
	c := s.NewClient(fb.Node(0))
	var h *Handle
	k.Spawn("setup", func(p *sim.Proc) {
		h, _ = c.Open(p, "f", true, Striping{StripeSize: 4096, StripeCount: 3})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, size uint16) bool {
		if size == 0 {
			return len(h.planRPCs(int64(off), 0)) == 0
		}
		rpcs := h.planRPCs(int64(off), int64(size))
		cur := int64(off)
		for _, r := range rpcs {
			if r.ext.Off != cur {
				return false
			}
			cur = r.ext.End()
		}
		return cur == int64(off)+int64(size)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnlink(t *testing.T) {
	k := sim.NewKernel(1)
	s, f := testSystem(k, 2)
	c := s.NewClient(f.Node(0))
	k.Spawn("client", func(p *sim.Proc) {
		h, _ := c.Open(p, "f", true, Striping{})
		h.Close(p)
		if err := c.Unlink(p, "f"); err != nil {
			t.Error(err)
		}
		if s.Lookup("f") != nil {
			t.Error("file still present after unlink")
		}
		if err := c.Unlink(p, "f"); !errors.Is(err, ErrNotFound) {
			t.Errorf("want ErrNotFound, got %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentClientsShareTargets(t *testing.T) {
	k := sim.NewKernel(1)
	s, f := testSystem(k, 1)
	var ends []sim.Time
	for i := 0; i < 2; i++ {
		c := s.NewClient(f.Node(i))
		i := i
		k.Spawn("client", func(p *sim.Proc) {
			h, _ := c.Open(p, "f", true, Striping{StripeSize: 1 << 20, StripeCount: 1})
			h.WriteAt(p, nil, int64(i)*(8<<20), 8<<20)
			ends = append(ends, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 16 MB through a single 100 MB/s target: at least ~160 ms total.
	last := ends[len(ends)-1]
	if last < sim.FromSeconds(0.16) {
		t.Fatalf("single shared target finished too fast: %v", last)
	}
}

func TestLockGranularitySerializesOverlappingWrites(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	cfg.TargetJitter = nil
	cfg.LockGranularity = 4 << 20
	f := netsim.New(k, netsim.Config{Nodes: 2, InjRate: 10 * sim.GBps, EjeRate: 10 * sim.GBps, Latency: sim.Microsecond, MemRate: 10 * sim.GBps})
	s := New(k, cfg, store.NewNull)
	waitsBefore := s.Locks.Waits
	for i := 0; i < 2; i++ {
		c := s.NewClient(f.Node(i))
		i := i
		k.Spawn("client", func(p *sim.Proc) {
			h, _ := c.Open(p, "f", true, Striping{})
			// Both writes land in the same 4 MB lock block.
			h.WriteAt(p, nil, int64(i)*(1<<20), 1<<20)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Locks.Waits == waitsBefore {
		t.Fatal("overlapping block-locked writes must contend")
	}
}

func TestLockManagerFIFOAndSharing(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewLockManager(k)
	var order []string
	e := extent.Extent{Off: 0, Len: 100}
	k.Spawn("w1", func(p *sim.Proc) {
		l := m.Acquire(p, "f", WriteLock, e)
		p.Sleep(sim.Second)
		order = append(order, "w1")
		m.Unlock(l)
	})
	k.Spawn("r1", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		l := m.Acquire(p, "f", ReadLock, e)
		order = append(order, "r1")
		p.Sleep(sim.Second)
		m.Unlock(l)
	})
	k.Spawn("r2", func(p *sim.Proc) {
		p.Sleep(2 * sim.Millisecond)
		l := m.Acquire(p, "f", ReadLock, e)
		order = append(order, "r2")
		p.Sleep(sim.Second)
		m.Unlock(l)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "w1" {
		t.Fatalf("order = %v", order)
	}
	// Both readers must have been granted concurrently (same wake time):
	// total time ~2s, not ~3s.
	if k.Now() > sim.FromSeconds(2.5) {
		t.Fatalf("readers did not share: finished at %v", k.Now())
	}
}

func TestDisjointWriteLocksDoNotBlock(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewLockManager(k)
	k.Spawn("a", func(p *sim.Proc) {
		l := m.Acquire(p, "f", WriteLock, extent.Extent{Off: 0, Len: 10})
		p.Sleep(sim.Second)
		m.Unlock(l)
	})
	k.Spawn("b", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		l := m.Acquire(p, "f", WriteLock, extent.Extent{Off: 100, Len: 10})
		m.Unlock(l)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Waits != 0 {
		t.Fatalf("disjoint locks must not wait (waits=%d)", m.Waits)
	}
}

func TestTargetJitterVariesServiceTimes(t *testing.T) {
	k := sim.NewKernel(7)
	cfg := DefaultConfig()
	f := netsim.New(k, netsim.Config{Nodes: 8, InjRate: 10 * sim.GBps, EjeRate: 10 * sim.GBps, Latency: sim.Microsecond, MemRate: 10 * sim.GBps})
	s := New(k, cfg, store.NewNull)
	var ends []sim.Time
	for i := 0; i < 8; i++ {
		c := s.NewClient(f.Node(i))
		i := i
		k.Spawn("client", func(p *sim.Proc) {
			h, _ := c.Open(p, "shared", true, Striping{})
			h.WriteAt(p, nil, int64(i)*(16<<20), 16<<20)
			ends = append(ends, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	minT, maxT := ends[0], ends[0]
	for _, e := range ends {
		if e < minT {
			minT = e
		}
		if e > maxT {
			maxT = e
		}
	}
	if maxT == minT {
		t.Fatal("jitter should spread completion times")
	}
}

func TestTruncate(t *testing.T) {
	k := sim.NewKernel(1)
	s, f := testSystem(k, 2)
	c := s.NewClient(f.Node(0))
	k.Spawn("client", func(p *sim.Proc) {
		h, _ := c.Open(p, "f", true, Striping{})
		h.WriteAt(p, []byte("abcdef"), 0, 6)
		h.Truncate(p, 3)
		if h.Meta().Size() != 3 {
			t.Errorf("size = %d", h.Meta().Size())
		}
		buf := make([]byte, 6)
		h.ReadAt(p, buf, 0, 0)
		if buf[2] != 'c' || buf[3] != 0 {
			t.Errorf("truncated content = %v", buf)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUtilizationAccessors(t *testing.T) {
	k := sim.NewKernel(1)
	s, f := testSystem(k, 2)
	c := s.NewClient(f.Node(0))
	k.Spawn("client", func(p *sim.Proc) {
		h, _ := c.Open(p, "f", true, Striping{StripeSize: 1 << 20, StripeCount: 2})
		h.WriteAt(p, nil, 0, 8<<20)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	util := s.TargetUtilization(k.Now())
	bytes := s.TargetBytes()
	if len(util) != 2 || len(bytes) != 2 {
		t.Fatal("accessor lengths wrong")
	}
	if bytes[0]+bytes[1] != 8<<20 {
		t.Fatalf("target bytes = %v", bytes)
	}
	if util[0] <= 0 || util[0] > 1 {
		t.Fatalf("utilization = %v", util)
	}
	if s.MetaOps() == 0 {
		t.Fatal("metadata ops not counted")
	}
}

func TestTargetDownFailsWrites(t *testing.T) {
	k := sim.NewKernel(1)
	s, f := testSystem(k, 4)
	c := s.NewClient(f.Node(0))
	k.Spawn("client", func(p *sim.Proc) {
		h, _ := c.Open(p, "f", true, Striping{StripeSize: 4096, StripeCount: 4})
		s.SetTargetDown(1, true)
		// Stripe 1 lands on the downed target.
		err := h.WriteAt(p, nil, 4096, 4096)
		if !errors.Is(err, ErrTargetDown) {
			t.Errorf("want ErrTargetDown, got %v", err)
		}
		// Other targets stay up.
		if err := h.WriteAt(p, nil, 0, 4096); err != nil {
			t.Errorf("healthy target write failed: %v", err)
		}
		s.SetTargetDown(1, false)
		if err := h.WriteAt(p, nil, 4096, 4096); err != nil {
			t.Errorf("write after target restore: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDegradedTargetStretchesService(t *testing.T) {
	run := func(factor float64) sim.Time {
		k := sim.NewKernel(1)
		s, f := testSystem(k, 1)
		c := s.NewClient(f.Node(0))
		if factor != 1 {
			s.SetTargetSpeed(0, factor)
		}
		var end sim.Time
		k.Spawn("client", func(p *sim.Proc) {
			h, _ := c.Open(p, "f", true, Striping{StripeSize: 1 << 20, StripeCount: 1})
			if err := h.WriteAt(p, nil, 0, 16<<20); err != nil {
				t.Error(err)
			}
			end = p.Now()
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	healthy, degraded := run(1), run(0.25)
	// A quarter-speed target must take roughly four times as long.
	if degraded < 3*healthy {
		t.Fatalf("degraded target too fast: healthy %v, degraded %v", healthy, degraded)
	}
}
