package pfs

import (
	"repro/internal/extent"
	"repro/internal/sim"
)

// LockMode distinguishes shared (read) from exclusive (write) byte-range
// locks, mirroring ROMIO's ADIOI_READ_LOCK / ADIOI_WRITE_LOCK macros.
type LockMode int

// Lock modes.
const (
	ReadLock LockMode = iota
	WriteLock
)

func (m LockMode) String() string {
	if m == ReadLock {
		return "read"
	}
	return "write"
}

// Lock is a granted byte-range lock; release it with LockManager.Unlock.
type Lock struct {
	file string
	mode LockMode
	ext  extent.Extent
	req  *lockReq
}

// Extent returns the locked byte range.
func (l *Lock) Extent() extent.Extent { return l.ext }

type lockReq struct {
	proc    *sim.Proc
	mode    LockMode
	ext     extent.Extent
	granted bool
}

type fileLocks struct {
	queue []*lockReq // FIFO: granted requests stay until unlocked
}

// LockManager implements FIFO-fair byte-range locking per file, the
// mechanism behind both extent-based file-system locking protocols and the
// e10_cache=coherent consistency mode.
type LockManager struct {
	k     *sim.Kernel
	files map[string]*fileLocks

	// Statistics.
	Waits    int64    // lock requests that had to queue
	WaitTime sim.Time // total time spent blocked on locks
}

// NewLockManager creates a lock manager.
func NewLockManager(k *sim.Kernel) *LockManager {
	return &LockManager{k: k, files: make(map[string]*fileLocks)}
}

func compatible(a, b *lockReq) bool {
	if !a.ext.Overlaps(b.ext) {
		return true
	}
	return a.mode == ReadLock && b.mode == ReadLock
}

// grantable reports whether req conflicts with no earlier request in the
// queue (granted or still waiting — strict FIFO prevents starvation).
func (fl *fileLocks) grantable(req *lockReq) bool {
	for _, q := range fl.queue {
		if q == req {
			return true
		}
		if !compatible(q, req) {
			return false
		}
	}
	return true
}

// Acquire blocks p until the requested byte range is locked.
func (m *LockManager) Acquire(p *sim.Proc, file string, mode LockMode, e extent.Extent) *Lock {
	fl := m.files[file]
	if fl == nil {
		fl = &fileLocks{}
		m.files[file] = fl
	}
	req := &lockReq{proc: p, mode: mode, ext: e}
	fl.queue = append(fl.queue, req)
	if fl.grantable(req) {
		req.granted = true
		return &Lock{file: file, mode: mode, ext: e, req: req}
	}
	m.Waits++
	start := p.Now()
	p.Park()
	m.WaitTime += p.Now() - start
	if !req.granted {
		panic("pfs: lock wakeup without grant")
	}
	return &Lock{file: file, mode: mode, ext: e, req: req}
}

// Unlock releases l and grants any newly compatible waiters in FIFO order.
func (m *LockManager) Unlock(l *Lock) {
	fl := m.files[l.file]
	if fl == nil {
		panic("pfs: unlock on unknown file")
	}
	for i, q := range fl.queue {
		if q == l.req {
			fl.queue = append(fl.queue[:i], fl.queue[i+1:]...)
			m.grantWaiters(fl)
			return
		}
	}
	panic("pfs: unlock of lock not held")
}

func (m *LockManager) grantWaiters(fl *fileLocks) {
	for _, q := range fl.queue {
		if q.granted {
			continue
		}
		if fl.grantable(q) {
			q.granted = true
			m.k.Wake(q.proc)
		}
	}
}

// HeldLocks returns the number of currently granted locks on file (for
// tests and introspection).
func (m *LockManager) HeldLocks(file string) int {
	fl := m.files[file]
	if fl == nil {
		return 0
	}
	n := 0
	for _, q := range fl.queue {
		if q.granted {
			n++
		}
	}
	return n
}
