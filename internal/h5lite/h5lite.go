// Package h5lite is a minimal parallel HDF5-like container built on the
// MPI-IO layer. Flash-IO writes its checkpoint and plot files through the
// parallel HDF5 library; this package reproduces the resulting access
// pattern: a small superblock and per-dataset object headers written by
// rank 0, and large contiguous dataset regions written collectively by all
// ranks. Datasets are laid out contiguously at aligned offsets.
package h5lite

import (
	"encoding/binary"
	"fmt"

	"repro/internal/mpi"
	"repro/internal/mpiio"
)

// Layout constants.
const (
	superblockSize = 96
	headerSize     = 256  // per-dataset object header
	dataAlign      = 4096 // dataset data alignment
)

// signature mimics the HDF5 format signature.
var signature = []byte("\x89HDF\r\n\x1a\n")

// Writer builds one container file collectively. All methods must be
// called by every rank of the file's communicator in the same order.
type Writer struct {
	f      *mpiio.File
	rank   *mpi.Rank
	cursor int64 // next free byte
	nsets  int
	closed bool
}

// Create initialises the container: rank 0 writes the superblock.
func Create(r *mpi.Rank, f *mpiio.File) (*Writer, error) {
	w := &Writer{f: f, rank: r, cursor: superblockSize}
	if f.Comm().RankOf(r) == 0 {
		sb := make([]byte, superblockSize)
		copy(sb, signature)
		binary.LittleEndian.PutUint32(sb[8:], 0) // version
		if err := f.WriteAt(0, sb, superblockSize); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// Dataset is a contiguous dataset region within the container.
type Dataset struct {
	Name string
	Base int64 // file offset of the data region
	Size int64 // data bytes
}

// CreateDataset allocates a dataset of size bytes. Rank 0 writes the object
// header; the data region starts at the next aligned offset. Collective:
// every rank computes the same layout.
func (w *Writer) CreateDataset(name string, size int64) (Dataset, error) {
	if w.closed {
		return Dataset{}, fmt.Errorf("h5lite: writer closed")
	}
	if size < 0 {
		return Dataset{}, fmt.Errorf("h5lite: negative dataset size")
	}
	hdrOff := w.cursor
	base := align(hdrOff+headerSize, dataAlign)
	ds := Dataset{Name: name, Base: base, Size: size}
	w.cursor = base + size
	w.nsets++
	if w.f.Comm().RankOf(w.rank) == 0 {
		hdr := make([]byte, headerSize)
		copy(hdr, "OHDR")
		n := copy(hdr[16:48], name)
		_ = n
		binary.LittleEndian.PutUint64(hdr[48:], uint64(base))
		binary.LittleEndian.PutUint64(hdr[56:], uint64(size))
		if err := w.f.WriteAt(hdrOff, hdr, headerSize); err != nil {
			return ds, err
		}
	}
	return ds, nil
}

// WriteAll collectively writes n bytes into the dataset at dataset-relative
// offset off. data may be nil for metadata-only simulation.
func (w *Writer) WriteAll(ds Dataset, off int64, data []byte, n int64) error {
	if off < 0 || off+n > ds.Size {
		return fmt.Errorf("h5lite: write [%d,%d) outside dataset %q of %d bytes", off, off+n, ds.Name, ds.Size)
	}
	return w.f.WriteAtAll(ds.Base+off, data, n)
}

// Close finalises the container: rank 0 writes the root-group object count
// into the superblock area. The underlying MPI file is NOT closed (the
// caller controls close timing, e.g. for the deferred-close workflow).
func (w *Writer) Close() error {
	if w.closed {
		return fmt.Errorf("h5lite: writer closed twice")
	}
	w.closed = true
	if w.f.Comm().RankOf(w.rank) == 0 {
		tail := make([]byte, 16)
		copy(tail, "ROOT")
		binary.LittleEndian.PutUint32(tail[4:], uint32(w.nsets))
		return w.f.WriteAt(superblockSize-16, tail, 16)
	}
	return nil
}

// TotalBytes reports the file size consumed so far.
func (w *Writer) TotalBytes() int64 { return w.cursor }

func align(x, a int64) int64 { return (x + a - 1) / a * a }
