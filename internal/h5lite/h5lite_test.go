package h5lite

import (
	"bytes"
	"testing"

	"repro/internal/adio"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/netsim"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/store"
)

func testEnv(t *testing.T, nodes, perNode int) (*mpiio.Env, *mpi.World, *pfs.System) {
	t.Helper()
	k := sim.NewKernel(1)
	fab := netsim.New(k, netsim.Config{
		Nodes: nodes, InjRate: 3 * sim.GBps, EjeRate: 3 * sim.GBps,
		Latency: 2 * sim.Microsecond, MemRate: 6 * sim.GBps,
	})
	cfg := pfs.DefaultConfig()
	cfg.TargetJitter = nil
	fs := pfs.New(k, cfg, store.NewMem)
	w := mpi.NewWorld(k, fab, perNode)
	clients := make([]*pfs.Client, nodes)
	for i := range clients {
		clients[i] = fs.NewClient(fab.Node(i))
	}
	env := &mpiio.Env{Registry: adio.NewRegistry(adio.NewUFSDriver(func(n int) *pfs.Client { return clients[n] }))}
	return env, w, fs
}

func TestContainerLayoutAndContent(t *testing.T) {
	env, w, fs := testEnv(t, 2, 2)
	var base0, base1 int64
	err := w.Run(func(r *mpi.Rank) {
		f, err := env.Open(r, w.Comm(), "ckpt", mpiio.ModeCreate|mpiio.ModeWrOnly,
			mpi.Info{adio.HintCBWrite: "enable"})
		if err != nil {
			t.Error(err)
			return
		}
		wr, err := Create(r, f)
		if err != nil {
			t.Error(err)
			return
		}
		ds0, err := wr.CreateDataset("alpha", 4096)
		if err != nil {
			t.Error(err)
			return
		}
		ds1, err := wr.CreateDataset("beta", 8192)
		if err != nil {
			t.Error(err)
			return
		}
		base0, base1 = ds0.Base, ds1.Base
		me := f.Comm().RankOf(r)
		chunk := int64(1024)
		data := bytes.Repeat([]byte{byte(me + 1)}, int(chunk))
		if err := wr.WriteAll(ds0, int64(me)*chunk, data, chunk); err != nil {
			t.Error(err)
		}
		if err := wr.Close(); err != nil {
			t.Error(err)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if base0%dataAlign != 0 || base1%dataAlign != 0 {
		t.Fatalf("dataset bases not aligned: %d %d", base0, base1)
	}
	if base1 < base0+4096 {
		t.Fatal("datasets overlap")
	}
	meta := fs.Lookup("ckpt")
	sig := make([]byte, 8)
	meta.Store().ReadAt(sig, 0)
	if !bytes.Equal(sig, signature) {
		t.Fatalf("superblock signature = %q", sig)
	}
	// Dataset content: rank r wrote byte r+1 at base0 + r*1024.
	for me := 0; me < 4; me++ {
		b := make([]byte, 1024)
		meta.Store().ReadAt(b, base0+int64(me)*1024)
		if b[0] != byte(me+1) || b[1023] != byte(me+1) {
			t.Fatalf("dataset bytes for rank %d wrong: %d", me, b[0])
		}
	}
}

func TestOutOfBoundsWriteRejected(t *testing.T) {
	env, w, _ := testEnv(t, 1, 1)
	err := w.Run(func(r *mpi.Rank) {
		f, _ := env.Open(r, w.Comm(), "f", mpiio.ModeCreate, nil)
		wr, _ := Create(r, f)
		ds, _ := wr.CreateDataset("d", 100)
		if err := wr.WriteAll(ds, 50, nil, 100); err == nil {
			t.Error("out-of-bounds dataset write must fail")
		}
		_ = wr.Close()
		_ = f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWriterLifecycle(t *testing.T) {
	env, w, _ := testEnv(t, 1, 1)
	err := w.Run(func(r *mpi.Rank) {
		f, _ := env.Open(r, w.Comm(), "f", mpiio.ModeCreate, nil)
		wr, _ := Create(r, f)
		if _, err := wr.CreateDataset("d", -1); err == nil {
			t.Error("negative size must fail")
		}
		if err := wr.Close(); err != nil {
			t.Error(err)
		}
		if err := wr.Close(); err == nil {
			t.Error("double close must fail")
		}
		if _, err := wr.CreateDataset("late", 10); err == nil {
			t.Error("create after close must fail")
		}
		_ = f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTotalBytesGrows(t *testing.T) {
	env, w, _ := testEnv(t, 1, 1)
	err := w.Run(func(r *mpi.Rank) {
		f, _ := env.Open(r, w.Comm(), "f", mpiio.ModeCreate, nil)
		wr, _ := Create(r, f)
		before := wr.TotalBytes()
		_, _ = wr.CreateDataset("d", 1<<20)
		if wr.TotalBytes() < before+1<<20 {
			t.Error("TotalBytes must account dataset space")
		}
		_ = wr.Close()
		_ = f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}
