package mpiwrap

import (
	"testing"

	"repro/internal/adio"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/nvm"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/store"

	"repro/internal/mpiio"
)

const sampleConfig = `
# MPIWRAP configuration used in the paper's experiments
[file "ckpt*"]
e10_cache = enable
e10_cache_flush_flag = flush_immediate
defer_close = true

[file "plot*"]
romio_cb_write = enable
defer_close = false
`

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig(sampleConfig)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Rules) != 2 {
		t.Fatalf("rules = %d", len(cfg.Rules))
	}
	r := cfg.Find("ckpt.0001")
	if r == nil || !r.DeferClose {
		t.Fatalf("ckpt rule = %+v", r)
	}
	if v, _ := r.Hints.Get("e10_cache"); v != "enable" {
		t.Fatalf("hints = %v", r.Hints)
	}
	p := cfg.Find("plot.0001")
	if p == nil || p.DeferClose {
		t.Fatalf("plot rule = %+v", p)
	}
	if cfg.Find("other") != nil {
		t.Fatal("unmatched file must have no rule")
	}
}

func TestParseConfigErrors(t *testing.T) {
	for _, bad := range []string{
		"[file \"x\"\nk = v",
		"[group \"x\"]\n",
		"key = value\n",
		"[file \"x\"]\ndefer_close = banana\n",
		"[file \"x\"]\nnot-an-assignment\n",
		"[file \"\"]\n",
	} {
		if _, err := ParseConfig(bad); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestBaseName(t *testing.T) {
	cases := map[string]string{
		"ckpt.0003": "ckpt",
		"ckpt.0004": "ckpt",
		"file.dat":  "file.dat",
		"plain":     "plain",
		"a.b.c.12":  "a.b.c",
		"trailing.": "trailing.",
	}
	for in, want := range cases {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}

// wrapRig builds a cluster with local SSDs for deferred-close tests.
func wrapRig(t *testing.T) (*mpiio.Env, *mpi.World, *pfs.System) {
	t.Helper()
	k := sim.NewKernel(1)
	fab := netsim.New(k, netsim.Config{
		Nodes: 1, InjRate: 3 * sim.GBps, EjeRate: 3 * sim.GBps,
		Latency: 2 * sim.Microsecond, MemRate: 6 * sim.GBps,
	})
	cfg := pfs.DefaultConfig()
	cfg.TargetJitter = nil
	fs := pfs.New(k, cfg, store.NewNull)
	w := mpi.NewWorld(k, fab, 1)
	client := fs.NewClient(fab.Node(0))
	dev := nvm.NewDevice(k, "ssd", nvm.DeviceConfig{
		WriteRate: 500 * sim.MBps, ReadRate: 520 * sim.MBps,
		Latency: 100 * sim.Microsecond, Capacity: 1 << 30,
	})
	localFS := nvm.NewFS(dev, nvm.FSConfig{SupportsFallocate: true}, store.NewNull)
	coreEnv := &core.Env{LocalFS: func(int) *nvm.FS { return localFS }, Locks: fs.Locks}
	env := &mpiio.Env{
		Registry: adio.NewRegistry(adio.NewUFSDriver(func(int) *pfs.Client { return client })),
		Hooks:    coreEnv.HooksFactory(),
	}
	return env, w, fs
}

func TestDeferredCloseTransformsWorkflow(t *testing.T) {
	env, w, fs := wrapRig(t)
	cfg, err := ParseConfig(sampleConfig)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(r *mpi.Rank) {
		wr := New(env, cfg, r)
		// Phase 0: open + write + "close" ckpt.0000.
		f0, err := wr.FileOpen(w.Comm(), "ckpt.0000", mpiio.ModeCreate|mpiio.ModeWrOnly, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if err := f0.WriteAt(0, nil, 8<<20); err != nil {
			t.Error(err)
		}
		if err := wr.FileClose(f0); err != nil {
			t.Error(err)
		}
		if wr.Outstanding() != 1 || wr.DeferredCloses != 1 {
			t.Errorf("close must be deferred: outstanding=%d", wr.Outstanding())
		}
		// The cache hint was injected: data must still be only in cache
		// (flush_immediate sync is in flight; close has not waited yet).
		r.Compute(sim.FromSeconds(2))
		// Phase 1: opening ckpt.0001 really closes ckpt.0000.
		f1, err := wr.FileOpen(w.Comm(), "ckpt.0001", mpiio.ModeCreate|mpiio.ModeWrOnly, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if wr.Outstanding() != 0 {
			t.Error("previous file must be really closed at next open")
		}
		if fs.TotalBytesWritten() < 8<<20 {
			t.Error("deferred close must have completed the sync")
		}
		if err := wr.FileClose(f1); err != nil {
			t.Error(err)
		}
		// Finalize closes everything still outstanding.
		if err := wr.Finalize(); err != nil {
			t.Error(err)
		}
		if wr.Outstanding() != 0 {
			t.Error("finalize must drain outstanding files")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonMatchingFilesCloseImmediately(t *testing.T) {
	env, w, _ := wrapRig(t)
	cfg, _ := ParseConfig(sampleConfig)
	err := w.Run(func(r *mpi.Rank) {
		wr := New(env, cfg, r)
		f, err := wr.FileOpen(w.Comm(), "other.dat", mpiio.ModeCreate, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if err := wr.FileClose(f); err != nil {
			t.Error(err)
		}
		if wr.Outstanding() != 0 || wr.RealCloses != 1 {
			t.Error("non-matching file must close for real")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUserHintsWinOverConfig(t *testing.T) {
	env, w, _ := wrapRig(t)
	cfg, _ := ParseConfig(sampleConfig)
	err := w.Run(func(r *mpi.Rank) {
		wr := New(env, cfg, r)
		f, err := wr.FileOpen(w.Comm(), "ckpt.0000", mpiio.ModeCreate,
			mpi.Info{core.HintCache: "disable"})
		if err != nil {
			t.Error(err)
			return
		}
		if got := f.GetInfo()[core.HintCache]; got != "disable" {
			t.Errorf("user hint must win, got %q", got)
		}
		_ = wr.FileClose(f)
		_ = wr.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
}
