// Package mpiwrap reproduces the paper's MPIWRAP library (§III-C): a
// PMPI-style wrapper around MPI_File_{open,close} that (a) injects MPI-IO
// hints from a configuration file, per file-name pattern, and (b) applies
// the workflow modification of Figure 3 behind the application's back —
// when a file is "closed" it is kept open internally, and really closed
// (waiting for cache synchronisation) only when the next file with the
// same base name is opened, or at MPI_Finalize.
package mpiwrap

import (
	"bufio"
	"fmt"
	"strings"

	"repro/internal/mpi"
	"repro/internal/mpiio"
)

// Rule maps a file-name pattern to hints and workflow options.
type Rule struct {
	Pattern    string   // prefix pattern; a trailing '*' matches any suffix
	Hints      mpi.Info // hints injected at open
	DeferClose bool     // apply the Figure 3 deferred-close transformation
}

// Matches reports whether name matches the rule's pattern.
func (r Rule) Matches(name string) bool {
	if strings.HasSuffix(r.Pattern, "*") {
		return strings.HasPrefix(name, strings.TrimSuffix(r.Pattern, "*"))
	}
	return name == r.Pattern
}

// Config is a parsed MPIWRAP configuration.
type Config struct {
	Rules []Rule
}

// Find returns the first matching rule for name, or nil.
func (c *Config) Find(name string) *Rule {
	for i := range c.Rules {
		if c.Rules[i].Matches(name) {
			return &c.Rules[i]
		}
	}
	return nil
}

// ParseConfig reads the MPIWRAP configuration format:
//
//	# comment
//	[file "ckpt*"]
//	e10_cache = enable
//	e10_cache_flush_flag = flush_immediate
//	defer_close = true
//
// Sections apply to files whose (base) name matches the quoted pattern.
func ParseConfig(text string) (*Config, error) {
	cfg := &Config{}
	var cur *Rule
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("mpiwrap: line %d: unterminated section", lineNo)
			}
			inner := strings.TrimSpace(line[1 : len(line)-1])
			if !strings.HasPrefix(inner, "file") {
				return nil, fmt.Errorf("mpiwrap: line %d: unknown section %q", lineNo, inner)
			}
			pat := strings.TrimSpace(strings.TrimPrefix(inner, "file"))
			pat = strings.Trim(pat, `"`)
			if pat == "" {
				return nil, fmt.Errorf("mpiwrap: line %d: empty file pattern", lineNo)
			}
			cfg.Rules = append(cfg.Rules, Rule{Pattern: pat, Hints: mpi.Info{}})
			cur = &cfg.Rules[len(cfg.Rules)-1]
			continue
		}
		k, v, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("mpiwrap: line %d: expected key = value", lineNo)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if cur == nil {
			return nil, fmt.Errorf("mpiwrap: line %d: key outside a [file] section", lineNo)
		}
		if k == "defer_close" {
			switch v {
			case "true":
				cur.DeferClose = true
			case "false":
				cur.DeferClose = false
			default:
				return nil, fmt.Errorf("mpiwrap: line %d: defer_close must be true or false", lineNo)
			}
			continue
		}
		cur.Hints.Set(k, v)
	}
	return cfg, sc.Err()
}

// baseName strips a trailing numeric/step suffix so "ckpt.0003" and
// "ckpt.0004" share the base "ckpt". The paper identifies file groups by
// base name in exactly this way.
func baseName(path string) string {
	if i := strings.LastIndexByte(path, '.'); i > 0 {
		suffix := path[i+1:]
		numeric := len(suffix) > 0
		for _, c := range suffix {
			if c < '0' || c > '9' {
				numeric = false
				break
			}
		}
		if numeric {
			return path[:i]
		}
	}
	return path
}

// Wrapper is the per-rank interposition state: it mirrors the PMPI
// overloads of MPI_File_open and MPI_File_close.
type Wrapper struct {
	env  *mpiio.Env
	cfg  *Config
	rank *mpi.Rank

	// outstanding maps a base name to the file whose close was deferred.
	outstanding map[string]*mpiio.File

	// Statistics.
	DeferredCloses int64
	RealCloses     int64
}

// New creates the wrapper for one rank (the library's MPI_Init overload).
func New(env *mpiio.Env, cfg *Config, r *mpi.Rank) *Wrapper {
	return &Wrapper{env: env, cfg: cfg, rank: r, outstanding: make(map[string]*mpiio.File)}
}

// FileOpen is the wrapped MPI_File_open: it merges the configured hints
// into info and, when a previous file with the same base name is still
// internally open, really closes it first — triggering the cache
// synchronisation completion check, exactly as in §III-C.
func (w *Wrapper) FileOpen(comm *mpi.Comm, path string, amode int, info mpi.Info) (*mpiio.File, error) {
	merged := mpi.Info{}
	for k, v := range info {
		merged[k] = v
	}
	if rule := w.cfg.Find(path); rule != nil {
		for k, v := range rule.Hints {
			if _, userSet := info.Get(k); !userSet {
				merged[k] = v
			}
		}
	}
	base := baseName(path)
	if prev, ok := w.outstanding[base]; ok {
		delete(w.outstanding, base)
		w.RealCloses++
		if err := prev.Close(); err != nil {
			return nil, fmt.Errorf("mpiwrap: deferred close of %s: %w", prev.Path(), err)
		}
	}
	return w.env.Open(w.rank, comm, path, amode, merged)
}

// FileClose is the wrapped MPI_File_close: for files matched by a
// defer_close rule it returns success immediately, keeping the handle for
// future reference; otherwise it closes for real.
func (w *Wrapper) FileClose(f *mpiio.File) error {
	if rule := w.cfg.Find(f.Path()); rule != nil && rule.DeferClose {
		w.outstanding[baseName(f.Path())] = f
		w.DeferredCloses++
		return nil
	}
	w.RealCloses++
	return f.Close()
}

// Finalize is the wrapped MPI_Finalize: every internally open file is
// really closed, completing all outstanding cache synchronisation.
func (w *Wrapper) Finalize() error {
	var first error
	// Close in deterministic order.
	for len(w.outstanding) > 0 {
		var minKey string
		for k := range w.outstanding {
			if minKey == "" || k < minKey {
				minKey = k
			}
		}
		f := w.outstanding[minKey]
		delete(w.outstanding, minKey)
		w.RealCloses++
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Outstanding reports how many files are internally held open.
func (w *Wrapper) Outstanding() int { return len(w.outstanding) }
