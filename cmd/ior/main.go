// Command ior runs the IOR benchmark (§IV-D): every process writes one
// block per segment to a shared file. Unlike coll_perf and Flash-IO, the
// default accounting includes the last write phase's non-hidden cache
// synchronisation, which caps the achievable peak bandwidth (Figure 10).
//
//	ior -aggs 64 -cb 16 -case enabled
//	ior -segments 8 -block 8
package main

import (
	"flag"
	"os"

	"repro/internal/cli"
	"repro/internal/harness"
	"repro/internal/workloads"
)

func main() {
	fs := flag.NewFlagSet("ior", flag.ExitOnError)
	flags := cli.Register(fs, true)
	blockMB := fs.Int("block", 8, "block size per process per segment in MB")
	segments := fs.Int("segments", 8, "number of segments")
	_ = fs.Parse(os.Args[1:])

	w := workloads.IOR{BlockBytes: int64(*blockMB) << 20, Segments: *segments}
	if w.BlockBytes <= 0 || w.Segments <= 0 {
		cli.Fatalf("ior", "block and segments must be positive")
	}
	spec, err := flags.Spec(w)
	if err != nil {
		cli.Fatalf("ior", "%v", err)
	}
	res, err := harness.Run(spec)
	if err != nil {
		cli.Fatalf("ior", "%v", err)
	}
	cli.Report(os.Stdout, res)
	flags.ReportTrace(os.Stdout, res)
	flags.ReportMetrics(os.Stdout, "ior", res)
	flags.MaybeReport(os.Stdout, res)
}
