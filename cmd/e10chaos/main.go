// Command e10chaos is the deterministic chaos explorer for the simulated
// E10 stack: it soaks randomized workload/fault scenarios through the full
// cluster and checks the end-to-end integrity invariants (byte
// conservation, no lost acks, journal-replay idempotence, lock release,
// liveness, trace/metrics consistency).
//
//	e10chaos -iters 200 -seed 1          # soak; exit 1 on any violation
//	e10chaos -iters 200 -json            # same, machine-readable report
//	e10chaos -iters 200 -tenants         # multi-tenant service-mode soak
//	e10chaos -iters 200 -corrupt         # corruption-recovery soak
//	e10chaos -replay chaos_repro.json    # re-execute a committed reproducer
//
// The whole soak is a pure function of (-seed, -iters): two runs print
// byte-identical reports with the same sha256 digest. When a scenario
// fails, the failing schedule is shrunk ddmin-style to a minimal
// reproducer and written as a replayable chaos_repro.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/chaos"
	"repro/internal/estat"
)

func main() {
	var (
		iters   = flag.Int("iters", 100, "scenarios to explore")
		seed    = flag.Int64("seed", 1, "master seed; the soak is a pure function of (seed, iters)")
		replay  = flag.String("replay", "", "replay this chaos_repro.json instead of soaking; exit 1 unless the recorded verdict reproduces")
		jsonOut = flag.Bool("json", false, "print the soak report as JSON instead of text")
		out     = flag.String("out", "", "also write the soak report JSON to this file")
		repro   = flag.String("repro", "chaos_repro.json", "where to write the shrunk reproducer when the soak fails")
		noShrnk = flag.Bool("no-shrink", false, "report failures without shrinking them")
		netOnly = flag.Bool("netfaults", false, "soak only degraded-mode collective scenarios (lossy links, duplication, partitions, aggregator crashes)")
		tenants = flag.Bool("tenants", false, "soak only multi-tenant service-mode scenarios (quotas, reservations, queued admissions, tenant crashes, NVM faults)")
		corrupt = flag.Bool("corrupt", false, "soak only corruption-recovery scenarios (crashes followed by torn journal appends and bit-rot, probing scrub-and-repair)")
		critf   = flag.Bool("critpath", false, "with -replay: also print the replayed run's critical-path report")
		timelf  = flag.Bool("timeline", false, "with -replay: also print the replayed run's timeline")
		metOut  = flag.String("metrics-out", "", "with -replay: write the replayed run's metric snapshot as e10stat input JSON to this file (recovery/scrub counters included)")
		verbose = flag.Bool("v", false, "print one line per scenario")
	)
	flag.Parse()

	if *replay != "" {
		runReplay(*replay, *critf, *timelf, *metOut)
		return
	}

	var progress func(int, *chaos.Result)
	if *verbose {
		progress = func(i int, res *chaos.Result) {
			verdict := "ok"
			if res.Failed() {
				verdict = fmt.Sprintf("FAIL %v", res.ViolatedInvariants())
			}
			fmt.Fprintf(os.Stderr, "iter %3d seed %-20d %s/%s sessions=%d faults=%d: %s\n",
				i, res.Scenario.Seed, res.Scenario.Shape, res.Scenario.Mode,
				res.Scenario.Sessions, len(res.Scenario.Faults), verdict)
		}
	}

	gen := chaos.Generate
	if *netOnly {
		gen = chaos.GenerateNetFaults
	}
	if *tenants {
		gen = chaos.GenerateTenants
	}
	if *corrupt {
		gen = chaos.GenerateCorrupt
	}
	rep, err := chaos.ExploreGen(*seed, *iters, gen, progress)
	if err != nil {
		fatalf("%v", err)
	}
	if *jsonOut {
		b, err := rep.JSON()
		if err != nil {
			fatalf("%v", err)
		}
		os.Stdout.Write(b)
	} else {
		fmt.Print(rep.Text())
	}
	if *out != "" {
		b, err := rep.JSON()
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fatalf("write %s: %v", *out, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	if len(rep.Failures) == 0 {
		return
	}

	// The soak failed: shrink the first failure to a minimal reproducer so
	// the bug ships as a replayable file, then exit nonzero.
	if !*noShrnk {
		first := rep.Failures[0]
		fmt.Fprintf(os.Stderr, "shrinking iter %d (seed %d)...\n", first.Iter, first.Seed)
		sr, err := chaos.Shrink(first.Scenario)
		if err != nil {
			fatalf("shrink: %v", err)
		}
		res, err := chaos.Execute(sr.Minimal)
		if err != nil {
			fatalf("minimal scenario: %v", err)
		}
		note := fmt.Sprintf("shrunk from soak seed=%d iter=%d in %d evals", *seed, first.Iter, sr.Evals)
		b, err := chaos.NewRepro(res, note).Marshal()
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*repro, b, 0o644); err != nil {
			fatalf("write %s: %v", *repro, err)
		}
		fmt.Fprintf(os.Stderr,
			"minimal reproducer: %d fault action(s), %d rank(s), %d block(s) of %d KB — wrote %s (replay with: e10chaos -replay %s)\n",
			len(sr.Minimal.Faults), sr.Minimal.Nodes*sr.Minimal.PerNode,
			sr.Minimal.Blocks, sr.Minimal.BlockKB, *repro, *repro)
	}
	os.Exit(1)
}

// runReplay re-executes a committed reproducer and verifies the recorded
// verdict still holds. With critpath/timeline the replayed run's
// critical-path report and timeline are printed too — the replay is the
// cheapest way to get an attributed view of a failing schedule — and
// metricsOut exports the metric snapshot as e10stat input, which is how
// the scrub/quarantine counters of a corruption fixture reach e10stat.
func runReplay(path string, critpath, timeline bool, metricsOut string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	rp, err := chaos.ParseRepro(data)
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	res, match, err := chaos.Replay(rp)
	if err != nil {
		fatalf("replay %s: %v", path, err)
	}
	fmt.Printf("replayed %s: seed=%d %s/%s sessions=%d faults=%d injection=%q\n",
		path, rp.Scenario.Seed, rp.Scenario.Shape, rp.Scenario.Mode,
		rp.Scenario.Sessions, len(rp.Scenario.Faults), rp.Scenario.Injection)
	if rp.Note != "" {
		fmt.Printf("  note: %s\n", rp.Note)
	}
	fmt.Printf("  recorded verdict: %v\n", rp.Verdict)
	fmt.Printf("  replayed verdict: %v\n", res.ViolatedInvariants())
	for _, v := range res.Violations {
		fmt.Printf("    %s\n", v)
	}
	if critpath {
		if res.CritPath != nil {
			fmt.Print(res.CritPath.Markdown())
		} else {
			fmt.Println("  (no critical-path report: the run did not terminate cleanly)")
		}
	}
	if timeline {
		if res.Timeline != nil {
			fmt.Print(res.Timeline.Markdown())
		} else {
			fmt.Println("  (no timeline: the run did not terminate cleanly)")
		}
	}
	if metricsOut != "" {
		in := estat.Input{
			Schema:           estat.Schema,
			Workload:         "chaos",
			Case:             rp.Scenario.Mode,
			Cell:             rp.Scenario.Shape,
			Ranks:            rp.Scenario.Nodes * rp.Scenario.PerNode,
			WallTimeNs:       res.WallNS,
			EventsDispatched: res.Events,
			Metrics:          res.Metrics,
		}
		b, err := json.MarshalIndent(in, "", "  ")
		if err != nil {
			fatalf("metrics-out: %v", err)
		}
		if err := os.WriteFile(metricsOut, append(b, '\n'), 0o644); err != nil {
			fatalf("metrics-out: %v", err)
		}
		fmt.Printf("  metrics: wrote %s (feed it to e10stat)\n", metricsOut)
	}
	if !match {
		fatalf("%s: verdict did NOT reproduce", path)
	}
	fmt.Println("  verdict reproduced")
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "e10chaos: "+format+"\n", args...)
	os.Exit(1)
}
