// Command flashio runs the Flash-IO kernel (§IV-C): HDF5-style checkpoint
// files of a block-structured AMR hydrodynamics code, written through the
// h5lite container layer. The harness times the checkpoint file, which
// consumes the majority of the I/O time; -plot additionally writes the two
// plot files (with and without corner data) per phase, as the real kernel
// does.
//
//	flashio -aggs 64 -cb 4 -case enabled
//	flashio -blocks 80 -plot
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/harness"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/workloads"
)

// flashWithPlots wraps FlashIO to also emit the two plot files per phase.
type flashWithPlots struct {
	workloads.FlashIO
	plotVars int
}

func (f flashWithPlots) WritePhase(r *mpi.Rank, file *mpiio.File, payload bool) error {
	if err := f.FlashIO.WritePhase(r, file, payload); err != nil {
		return err
	}
	// The plot files are separate, much smaller files; to keep the harness
	// single-file-per-phase they are appended as extra datasets here, which
	// preserves the extra small-write traffic without changing accounting.
	if err := f.PlotFile(r, file, f.plotVars, false, payload); err != nil {
		return err
	}
	return f.PlotFile(r, file, f.plotVars, true, payload)
}

func main() {
	fs := flag.NewFlagSet("flashio", flag.ExitOnError)
	flags := cli.Register(fs, false)
	blocks := fs.Int("blocks", 80, "AMR blocks per process")
	vars := fs.Int("vars", 24, "unknowns (variables) per zone")
	plot := fs.Bool("plot", false, "also write the plot-file datasets each phase")
	plotVars := fs.Int("plot-vars", 4, "variables in each plot file")
	_ = fs.Parse(os.Args[1:])

	base := workloads.DefaultFlashIO()
	base.BlocksPerProc = *blocks
	base.Vars = *vars
	var w workloads.Workload = base
	if *plot {
		w = flashWithPlots{FlashIO: base, plotVars: *plotVars}
	}
	spec, err := flags.Spec(w)
	if err != nil {
		cli.Fatalf("flashio", "%v", err)
	}
	res, err := harness.Run(spec)
	if err != nil {
		cli.Fatalf("flashio", "%v", err)
	}
	cli.Report(os.Stdout, res)
	flags.ReportTrace(os.Stdout, res)
	flags.ReportMetrics(os.Stdout, "flashio", res)
	flags.MaybeReport(os.Stdout, res)
	fmt.Printf("  checkpoint size    : %.2f GB/process-file\n",
		float64(base.FileBytes(spec.Cluster.Nodes*spec.Cluster.RanksPerNode))/1e9)
}
