// Command e10stat analyses experiment results into paper-figure-style
// reports: the per-phase cost breakdown (Figures 5/6/8/10), the cache
// speedup comparison (Figures 4/7/9) and the flush-overlap accounting of
// Equation 1. Inputs are the JSON files written by the workload binaries'
// -metrics-out flag (or Chrome trace files from -trace); results from
// multiple runs can be combined in one report.
//
//	collperf -case disabled -metrics-out dis.json
//	collperf -case enabled  -metrics-out en.json
//	e10stat dis.json en.json
//	e10stat -format csv -out report.csv en.json
//	e10stat -run                   # built-in small demo pair
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/estat"
	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	fs := flag.NewFlagSet("e10stat", flag.ExitOnError)
	format := fs.String("format", "md", "report format: md | csv | json")
	out := fs.String("out", "", "write the report to this file instead of stdout")
	demo := fs.Bool("run", false, "run a small built-in disabled/enabled coll_perf pair and report on it")
	_ = fs.Parse(os.Args[1:])

	var ins []estat.Input
	if *demo {
		ins = append(ins, runDemo()...)
	}
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			cli.Fatalf("e10stat", "%v", err)
		}
		parsed, err := estat.Parse(data)
		if err != nil {
			cli.Fatalf("e10stat", "%s: %v", path, err)
		}
		ins = append(ins, parsed...)
	}
	if len(ins) == 0 {
		cli.Fatalf("e10stat", "no inputs: pass JSON files (from -metrics-out or -trace) or use -run")
	}

	text, err := estat.Render(ins, *format)
	if err != nil {
		cli.Fatalf("e10stat", "%v", err)
	}
	if *out == "" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		cli.Fatalf("e10stat", "%v", err)
	}
	fmt.Fprintf(os.Stderr, "e10stat: wrote %s\n", *out)
}

// runDemo produces a small deterministic disabled/enabled pair so the
// report machinery can be exercised without prior runs.
func runDemo() []estat.Input {
	w := workloads.DefaultCollPerf()
	w.RunBytes = 256 << 10
	var ins []estat.Input
	for _, cs := range []harness.Case{harness.CacheDisabled, harness.CacheEnabled} {
		spec := harness.DefaultSpec(w, cs, 4, 4<<20)
		spec.Cluster = harness.Scaled(42, 2, 2)
		spec.NFiles = 2
		spec.ComputeDelay = sim.Second / 2
		spec.Metrics = true
		res, err := harness.Run(spec)
		if err != nil {
			cli.Fatalf("e10stat", "demo %s: %v", cs, err)
		}
		ins = append(ins, res.StatInput())
	}
	return ins
}
