// Command e10stat analyses experiment results into paper-figure-style
// reports: the per-phase cost breakdown (Figures 5/6/8/10), the cache
// speedup comparison (Figures 4/7/9) and the flush-overlap accounting of
// Equation 1. It accepts every artifact the repo's tools write: the JSON
// files from the workload binaries' -metrics-out flag (and from
// `e10chaos -replay ... -metrics-out`, whose recovery/scrub counters feed
// the crash-recovery section), Chrome traces from
// -trace, bench baselines (BENCH_<date>.json), kilo-rank scale baselines
// (BENCH_SCALE_<date>.json), scale reports and digest goldens, and the
// critical-path / timeline reports from -critpath and -timeline; results
// from multiple files can be combined in one report.
//
//	collperf -case disabled -metrics-out dis.json
//	collperf -case enabled  -metrics-out en.json
//	e10stat dis.json en.json
//	e10stat -format csv -out report.csv en.json
//	e10stat BENCH_SCALE_2026-08-08.json    # summarize a scale baseline
//	e10stat -lint trace.json               # label/name cardinality lint
//	e10stat -run                           # built-in small demo pair
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/estat"
	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	fs := flag.NewFlagSet("e10stat", flag.ExitOnError)
	format := fs.String("format", "md", "report format: md | csv | json")
	out := fs.String("out", "", "write the report to this file instead of stdout")
	demo := fs.Bool("run", false, "run a small built-in disabled/enabled coll_perf pair and report on it")
	lint := fs.Bool("lint", false, "lint inputs for unbounded metric-label / trace-name cardinality instead of reporting (exit 1 on problems)")
	lintMax := fs.Int("lint-max", estat.DefaultLintMax, "distinct-value budget per label key / trace category for -lint")
	_ = fs.Parse(os.Args[1:])

	if *lint {
		runLint(fs.Args(), *demo, *lintMax)
		return
	}

	var arts []*estat.Artifact
	if *demo {
		arts = append(arts, &estat.Artifact{Kind: estat.KindStat, Inputs: runDemo()})
	}
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			cli.Fatalf("e10stat", "%v", err)
		}
		art, err := estat.ParseAny(data)
		if err != nil {
			cli.Fatalf("e10stat", "%s: %v", path, err)
		}
		arts = append(arts, art)
	}
	if len(arts) == 0 {
		cli.Fatalf("e10stat", "no inputs: pass JSON artifacts (metrics, traces, bench/scale baselines, critpath reports) or use -run")
	}

	text, err := estat.RenderAny(arts, *format)
	if err != nil {
		cli.Fatalf("e10stat", "%v", err)
	}
	if *out == "" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		cli.Fatalf("e10stat", "%v", err)
	}
	fmt.Fprintf(os.Stderr, "e10stat: wrote %s\n", *out)
}

// runLint runs the cardinality lint over every given file (and the demo
// pair's metrics with -run), printing problems and exiting non-zero when
// any are found.
func runLint(paths []string, demo bool, max int) {
	if !demo && len(paths) == 0 {
		cli.Fatalf("e10stat", "-lint needs input files (or -run for the demo pair)")
	}
	failed := false
	report := func(name string, problems []string) {
		for _, p := range problems {
			failed = true
			fmt.Fprintf(os.Stderr, "e10stat: lint: %s: %s\n", name, p)
		}
	}
	if demo {
		report("demo", estat.LintInputs(runDemo(), max))
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			cli.Fatalf("e10stat", "%v", err)
		}
		report(path, estat.LintData(data, max))
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("e10stat: lint clean")
}

// runDemo produces a small deterministic disabled/enabled pair so the
// report machinery can be exercised without prior runs.
func runDemo() []estat.Input {
	w := workloads.DefaultCollPerf()
	w.RunBytes = 256 << 10
	var ins []estat.Input
	for _, cs := range []harness.Case{harness.CacheDisabled, harness.CacheEnabled} {
		spec := harness.DefaultSpec(w, cs, 4, 4<<20)
		spec.Cluster = harness.Scaled(42, 2, 2)
		spec.NFiles = 2
		spec.ComputeDelay = sim.Second / 2
		spec.Metrics = true
		res, err := harness.Run(spec)
		if err != nil {
			cli.Fatalf("e10stat", "demo %s: %v", cs, err)
		}
		ins = append(ins, res.StatInput())
	}
	return ins
}
