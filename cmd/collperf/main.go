// Command collperf runs the coll_perf benchmark (§IV-B): 3D
// block-distributed array writes to a shared file, extended — as the paper
// did — with multi-file output and compute-delay emulation.
//
//	collperf -aggs 64 -cb 16 -case enabled
//	collperf -case disabled -nodes 16 -ppn 8
package main

import (
	"flag"
	"os"

	"repro/internal/cli"
	"repro/internal/harness"
	"repro/internal/workloads"
)

func main() {
	fs := flag.NewFlagSet("collperf", flag.ExitOnError)
	flags := cli.Register(fs, false)
	blockMB := fs.Int("block", 64, "data per process per file in MB")
	_ = fs.Parse(os.Args[1:])

	w := workloads.DefaultCollPerf()
	// Scale the per-process block while preserving the run structure.
	w.RunBytes = int64(*blockMB) << 20 / int64(w.RunsY*w.RunsZ)
	if w.RunBytes <= 0 {
		cli.Fatalf("collperf", "block too small: %d MB", *blockMB)
	}
	spec, err := flags.Spec(w)
	if err != nil {
		cli.Fatalf("collperf", "%v", err)
	}
	res, err := harness.Run(spec)
	if err != nil {
		cli.Fatalf("collperf", "%v", err)
	}
	cli.Report(os.Stdout, res)
	flags.ReportTrace(os.Stdout, res)
	flags.ReportMetrics(os.Stdout, "collperf", res)
	flags.MaybeReport(os.Stdout, res)
}
