// Command e10bench regenerates the paper's evaluation figures.
//
// Figures 4, 5 and 6 come from the coll_perf sweep, Figures 7 and 8 from
// the Flash-IO sweep, and Figures 9 and 10 from the IOR sweep (which, as
// in §IV-D, includes the last write phase's non-hidden synchronisation).
// Each sweep covers the <aggregators>_<coll_bufsize> grid for the cases
// "BW Cache Disabled", "BW Cache Enabled" and "TBW Cache Enable".
//
//	e10bench -fig all              # everything, quick grid
//	e10bench -fig 4 -sweep paper   # Figure 4 on the full 4×5 grid
//	e10bench -fig 9 -scale 8x4     # IOR figures on a shrunken cluster
//	e10bench -fig 7 -csv out.csv   # also dump CSV for plotting
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/cli"
	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 4..10, or 'all'")
		sweep    = flag.String("sweep", "quick", "grid: 'quick' (3 buffer sizes) or 'paper' (full 4x5 grid)")
		seed     = flag.Int64("seed", 20160901, "simulation seed")
		scale    = flag.String("scale", "", "shrink the cluster, e.g. '16x8' for 16 nodes x 8 ranks")
		csv      = flag.String("csv", "", "also write results as CSV to this file")
		files    = flag.Int("files", 4, "files written per experiment")
		ablation = flag.Bool("ablation", false, "run the design-choice ablations instead of the figures")
		faults   = flag.String("faults", "", "fault schedule armed on every cell (see internal/fault)")
		fdemo    = flag.Bool("faultdemo", false, "run the degraded-PFS-target scenario instead of the figures")
		tracef   = flag.String("trace", "", "trace one representative cache-enabled coll_perf cell to this Chrome/Perfetto JSON file instead of the figures")
		critf    = flag.Bool("critpath", false, "run one representative cache-enabled coll_perf cell and print its critical-path report instead of the figures")
		timelf   = flag.Int("timeline", 0, "run the representative cell and print its timeline in this many buckets instead of the figures (combines with -critpath)")
		mflags   = cli.RegisterMetrics(flag.CommandLine)
		brecord  = flag.String("bench-record", "", "run the fixed regression matrix and write the baseline JSON to this file")
		bcompare = flag.String("bench-compare", "", "run the fixed regression matrix and compare against this baseline JSON (exit 1 on >2% regression); also gates the newest BENCH_SCALE_*.json kilo-rank baseline when one is committed")
		srecord  = flag.String("scale-bench-record", "", "run the 4096-rank kilo-scale benchmark and write the baseline JSON to this file")
		scrit    = flag.String("scale-critpath", "", "run a kilo-rank scale variant (clean | lossy | crash) with the critical-path analyzer and print the report")
		sranks   = flag.Int("scale-ranks", 4096, "rank count for -scale-critpath")
	)
	flag.Parse()

	if *brecord != "" {
		runBenchRecord(*seed, *brecord)
		return
	}
	if *bcompare != "" {
		runBenchCompare(*seed, *bcompare)
		runScaleBenchCompare()
		return
	}
	if *srecord != "" {
		runScaleBenchRecord(*seed, *srecord)
		return
	}
	if *scrit != "" {
		runScaleCritPath(*scrit, *sranks)
		return
	}

	var sw harness.Sweep
	switch *sweep {
	case "quick":
		sw = harness.QuickSweep(*seed)
	case "paper":
		sw = harness.PaperSweep(*seed)
	default:
		fatalf("unknown -sweep %q", *sweep)
	}
	sw.NFiles = *files
	sw.FaultSpec = *faults
	if *scale != "" {
		var nodes, ppn int
		if _, err := fmt.Sscanf(*scale, "%dx%d", &nodes, &ppn); err != nil || nodes < 1 || ppn < 1 {
			fatalf("bad -scale %q (want e.g. 16x8)", *scale)
		}
		sw.Cluster = harness.Scaled(*seed, nodes, ppn)
		// Keep aggregator counts meaningful on the smaller machine.
		var aggs []int
		for _, a := range sw.Aggregators {
			if a <= nodes*ppn {
				aggs = append(aggs, a)
			}
		}
		sw.Aggregators = aggs
	}

	if *ablation {
		runAblations(sw)
		return
	}
	if *fdemo {
		runFaultDemo(sw)
		return
	}
	if *tracef != "" {
		runTraceDemo(sw, *tracef)
		return
	}
	if *critf || *timelf > 0 {
		runCritPathDemo(sw, *critf, *timelf)
		return
	}
	if mflags.Enabled() {
		runMetricsDemo(sw, mflags)
		return
	}

	want := map[int]bool{}
	if *fig == "all" {
		for f := 4; f <= 10; f++ {
			want[f] = true
		}
	} else {
		var f int
		if _, err := fmt.Sscanf(*fig, "%d", &f); err != nil || f < 4 || f > 10 {
			fatalf("bad -fig %q (want 4..10 or all)", *fig)
		}
		want[f] = true
	}

	var csvOut strings.Builder
	runSweep := func(w workloads.Workload, includeLast bool) *harness.SweepResult {
		fmt.Fprintf(os.Stderr, "running %s sweep (%d aggregator counts x %d buffer sizes x 3 cases)...\n",
			w.Name(), len(sw.Aggregators), len(sw.CBBytes))
		sr, err := harness.RunSweep(w, harness.AllCases, sw, includeLast)
		if err != nil {
			fatalf("%s sweep: %v", w.Name(), err)
		}
		csvOut.WriteString(sr.RenderCSV())
		return sr
	}

	if want[4] || want[5] || want[6] {
		sr := runSweep(workloads.DefaultCollPerf(), false)
		if want[4] {
			fmt.Println(sr.RenderBandwidth("Figure 4"))
		}
		if want[5] {
			fmt.Println(sr.RenderBreakdown("Figure 5", harness.CacheEnabled))
		}
		if want[6] {
			fmt.Println(sr.RenderBreakdown("Figure 6", harness.CacheDisabled))
		}
	}
	if want[7] || want[8] {
		sr := runSweep(workloads.DefaultFlashIO(), false)
		if want[7] {
			fmt.Println(sr.RenderBandwidth("Figure 7"))
		}
		if want[8] {
			fmt.Println(sr.RenderBreakdown("Figure 8", harness.CacheEnabled))
		}
	}
	if want[9] || want[10] {
		sr := runSweep(workloads.DefaultIOR(), true)
		if want[9] {
			fmt.Println(sr.RenderBandwidth("Figure 9"))
		}
		if want[10] {
			fmt.Println(sr.RenderBreakdown("Figure 10", harness.CacheEnabled))
		}
	}

	if *csv != "" {
		if err := os.WriteFile(*csv, []byte(csvOut.String()), 0o644); err != nil {
			fatalf("write csv: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csv)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "e10bench: "+format+"\n", args...)
	os.Exit(1)
}

// runAblations exercises the design choices DESIGN.md calls out, one table
// each: sync-buffer size, flush policy, aggregator ratio and I/O-server
// jitter sensitivity.
func runAblations(sw harness.Sweep) {
	w := workloads.DefaultCollPerf()
	base := func(cs harness.Case, aggs int) harness.Spec {
		spec := harness.DefaultSpec(w, cs, aggs, 16<<20)
		spec.Cluster = sw.Cluster
		spec.NFiles = sw.NFiles
		spec.ComputeDelay = sw.Compute
		return spec
	}
	run := func(spec harness.Spec) *harness.Result {
		res, err := harness.Run(spec)
		if err != nil {
			fatalf("ablation: %v", err)
		}
		return res
	}

	fmt.Println("Ablation A — ind_wr_buffer_size (cache sync granularity), 8 aggregators")
	fmt.Printf("%-12s %12s %18s\n", "sync_buf", "BW [GB/s]", "not_hidden_sync[s]")
	for _, buf := range []int64{128 << 10, 512 << 10, 2 << 20, 8 << 20} {
		spec := base(harness.CacheEnabled, 8)
		spec.SyncBuffer = buf
		res := run(spec)
		fmt.Printf("%-12s %12.2f %18.2f\n", byteLabel(buf), res.BandwidthGBs,
			res.Breakdown["not_hidden_sync"].Seconds())
	}

	fmt.Println("\nAblation B — e10_cache_flush_flag, 16 aggregators, last sync counted")
	fmt.Printf("%-18s %12s\n", "flush_flag", "BW [GB/s]")
	for _, flush := range []string{"flush_immediate", "flush_onclose", "flush_adaptive"} {
		spec := base(harness.CacheEnabled, 16)
		spec.FlushFlag = flush
		spec.IncludeLastSync = true
		res := run(spec)
		fmt.Printf("%-18s %12.2f\n", flush, res.BandwidthGBs)
	}

	fmt.Println("\nAblation C — aggregator / compute-node ratio (the paper's central knob)")
	fmt.Printf("%-6s %14s %14s\n", "aggs", "enabled[GB/s]", "disabled[GB/s]")
	for _, aggs := range sw.Aggregators {
		en := run(base(harness.CacheEnabled, aggs))
		dis := run(base(harness.CacheDisabled, aggs))
		fmt.Printf("%-6d %14.2f %14.2f\n", aggs, en.BandwidthGBs, dis.BandwidthGBs)
	}

	fmt.Println("\nAblation D — I/O-server jitter (slowest-writer sensitivity), cache disabled")
	fmt.Printf("%-8s %12s %16s\n", "sigma", "BW [GB/s]", "post_write[s]")
	for _, sigma := range []float64{0, 0.25, 0.45, 0.9} {
		spec := base(harness.CacheDisabled, 32)
		if sigma > 0 {
			spec.Cluster.PFS.TargetJitter = sim.UnitLogNormal(sigma)
		} else {
			spec.Cluster.PFS.TargetJitter = nil
		}
		res := run(spec)
		fmt.Printf("%-8.2f %12.2f %16.2f\n", sigma, res.BandwidthGBs,
			res.Breakdown["post_write"].Seconds())
	}
}

// runFaultDemo measures the EXPERIMENTS.md fault scenario: collective-write
// bandwidth with one PFS data target degraded for most of the run, with and
// without the node-local cache. The cache hides the slow target behind the
// compute phases; without it the degradation lands on the write path.
func runFaultDemo(sw harness.Sweep) {
	w := workloads.DefaultCollPerf()
	const spec = "degrade-target,target=1,factor=0.25,from=1s,to=200s"
	run := func(cs harness.Case, faults string) *harness.Result {
		s := harness.DefaultSpec(w, cs, 16, 16<<20)
		s.Cluster = sw.Cluster
		s.NFiles = sw.NFiles
		s.ComputeDelay = sw.Compute
		s.FaultSpec = faults
		res, err := harness.Run(s)
		if err != nil {
			fatalf("faultdemo: %v", err)
		}
		return res
	}

	fmt.Println("Fault scenario — PFS data target 1 at 25% speed for [1s,200s), 16 aggregators, 16MB buffers")
	fmt.Printf("%-16s %-10s %12s %18s\n", "case", "target", "BW [GB/s]", "not_hidden_sync[s]")
	var report string
	for _, cs := range []harness.Case{harness.CacheDisabled, harness.CacheEnabled} {
		for _, faults := range []string{"", spec} {
			res := run(cs, faults)
			label := "healthy"
			if faults != "" {
				label = "degraded"
				report = res.FaultReport
			}
			fmt.Printf("%-16s %-10s %12.2f %18.2f\n", cs, label, res.BandwidthGBs,
				res.Breakdown["not_hidden_sync"].Seconds())
		}
	}
	fmt.Println()
	fmt.Print(report)
}

// runTraceDemo runs one representative cache-enabled coll_perf cell (16
// aggregators, 16 MB collective buffers — the middle of Figure 4's grid)
// with the event tracer attached, writes the Perfetto-loadable trace file
// and prints the trace digest. Traces are deterministic: the same seed and
// scale reproduce the file byte for byte.
func runTraceDemo(sw harness.Sweep, path string) {
	w := workloads.DefaultCollPerf()
	aggs := 16
	if n := sw.Cluster.Nodes * sw.Cluster.RanksPerNode; aggs > n {
		aggs = n
	}
	spec := harness.DefaultSpec(w, harness.CacheEnabled, aggs, 16<<20)
	spec.Cluster = sw.Cluster
	spec.NFiles = sw.NFiles
	spec.ComputeDelay = sw.Compute
	spec.FaultSpec = sw.FaultSpec
	spec.TracePath = path
	res, err := harness.Run(spec)
	if err != nil {
		fatalf("trace: %v", err)
	}
	fmt.Printf("traced %s cell=%s case=%s: %.2f GB/s, %.2f s simulated\n",
		w.Name(), spec.Label(), spec.Case, res.BandwidthGBs, res.WallTime.Seconds())
	fmt.Print(res.TraceSummary)
	fmt.Printf("wrote %s (%d events on %d tracks); open with https://ui.perfetto.dev or chrome://tracing\n",
		path, res.Trace.Len(), res.Trace.Tracks())
}

// runCritPathDemo runs the same representative cell as runTraceDemo with
// the critical-path analyzer (and optionally the timeline sampler) attached
// and prints the reports. The analysis is post-hoc: the cell's virtual
// times are identical to an unobserved run.
func runCritPathDemo(sw harness.Sweep, critpath bool, timelineBuckets int) {
	w := workloads.DefaultCollPerf()
	aggs := 16
	if n := sw.Cluster.Nodes * sw.Cluster.RanksPerNode; aggs > n {
		aggs = n
	}
	spec := harness.DefaultSpec(w, harness.CacheEnabled, aggs, 16<<20)
	spec.Cluster = sw.Cluster
	spec.NFiles = sw.NFiles
	spec.ComputeDelay = sw.Compute
	spec.FaultSpec = sw.FaultSpec
	spec.CritPath = critpath
	spec.TimelineBuckets = timelineBuckets
	res, err := harness.Run(spec)
	if err != nil {
		fatalf("critpath: %v", err)
	}
	fmt.Printf("analyzed %s cell=%s case=%s: %.2f GB/s, %.2f s simulated\n",
		w.Name(), spec.Label(), spec.Case, res.BandwidthGBs, res.WallTime.Seconds())
	fmt.Print(res.CritPathReport)
	fmt.Print(res.TimelineReport)
}

// benchTolerancePct is the wall-time regression the compare gate accepts.
// The simulation is deterministic, so unchanged code reproduces the
// baseline exactly; the headroom only absorbs intentional model tweaks.
const benchTolerancePct = 2

// runBenchRecord runs the regression matrix and writes the baseline file.
func runBenchRecord(seed int64, path string) {
	rep, err := harness.RunBenchReport(seed)
	if err != nil {
		fatalf("bench-record: %v", err)
	}
	b, err := harness.MarshalBench(rep)
	if err != nil {
		fatalf("bench-record: %v", err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		fatalf("bench-record: %v", err)
	}
	fmt.Print(harness.RenderBench(rep))
	fmt.Fprintf(os.Stderr, "wrote %s (%d scenarios)\n", path, len(rep.Scenarios))
}

// runBenchCompare re-runs the matrix and gates on the baseline file.
func runBenchCompare(seed int64, path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("bench-compare: %v", err)
	}
	base, err := harness.ParseBench(data)
	if err != nil {
		fatalf("bench-compare: %s: %v", path, err)
	}
	if base.Seed != seed {
		seed = base.Seed // compare on the baseline's seed, not the default
	}
	cur, err := harness.RunBenchReport(seed)
	if err != nil {
		fatalf("bench-compare: %v", err)
	}
	if err := harness.CompareBenchReports(base, cur, benchTolerancePct); err != nil {
		fatalf("bench-compare vs %s: %v", path, err)
	}
	fmt.Printf("bench-compare: %d scenarios within %d%% of %s\n",
		len(base.Scenarios), benchTolerancePct, path)
}

// runScaleBenchRecord runs the kilo-rank kernel benchmark and writes its
// baseline: the deterministic 4096-rank report digest plus a conservative
// events/sec floor for the throughput gate.
func runScaleBenchRecord(seed int64, path string) {
	rep, err := harness.RunScaleBench(seed)
	if err != nil {
		fatalf("scale-bench-record: %v", err)
	}
	b, err := harness.MarshalScaleBench(rep)
	if err != nil {
		fatalf("scale-bench-record: %v", err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		fatalf("scale-bench-record: %v", err)
	}
	fmt.Printf("scale-bench: %s %d ranks: %d events in %.0f ms virtual, %.0f events/sec host (floor %.0f)\n",
		rep.Variant, rep.Ranks, rep.Events, float64(rep.WallTimeNs)/1e6,
		rep.EventsPerSec, rep.EventsPerSecFloor)
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

// runScaleBenchCompare extends the -bench-compare gate to the kilo-rank
// tier: when a BENCH_SCALE_*.json baseline is committed, the newest one is
// re-run and gated on digest reproduction and the events/sec floor. With
// no baseline the pass is skipped silently.
func runScaleBenchCompare() {
	matches, err := filepath.Glob("BENCH_SCALE_*.json")
	if err != nil || len(matches) == 0 {
		return
	}
	sort.Strings(matches)
	path := matches[len(matches)-1]
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("scale-bench-compare: %v", err)
	}
	base, err := harness.ParseScaleBench(data)
	if err != nil {
		fatalf("scale-bench-compare: %s: %v", path, err)
	}
	cur, err := harness.RunScaleBench(base.Seed)
	if err != nil {
		fatalf("scale-bench-compare: %v", err)
	}
	if err := harness.CompareScaleBench(base, cur); err != nil {
		fatalf("scale-bench-compare vs %s: %v", path, err)
	}
	fmt.Printf("scale-bench-compare: %d ranks reproduce %s at %.0f events/sec (floor %.0f)\n",
		cur.Ranks, path, cur.EventsPerSec, base.EventsPerSecFloor)
}

// runScaleCritPath runs one kilo-rank scale variant with the critical-path
// analyzer attached and prints the scale report plus the full attribution
// (category shares, stragglers, path segments, message edges, what-ifs).
// The analysis is post-hoc: the run's digest is identical to an unanalyzed
// run of the same variant and scale.
func runScaleCritPath(variant string, ranks int) {
	var v harness.ScaleVariant
	switch variant {
	case "clean":
		v = harness.ScaleClean
	case "lossy":
		v = harness.ScaleLossy
	case "crash":
		v = harness.ScaleCrash
	default:
		fatalf("bad -scale-critpath %q (want clean, lossy or crash)", variant)
	}
	rep, err := harness.RunScale(harness.ScaleConfig{Variant: v, Ranks: ranks, CritPath: true})
	if err != nil {
		fatalf("scale-critpath: %v", err)
	}
	fmt.Print(rep.Text())
	fmt.Printf("digest=%s\n", rep.Digest())
	if rep.CritPathFull != nil {
		fmt.Print(rep.CritPathFull.Markdown())
	}
}

// runMetricsDemo runs the same representative cache-enabled coll_perf cell
// as the trace demo, but with the metrics registry attached: -metrics
// prints the registry text, -metrics-out writes the e10stat input JSON.
// Metrics are deterministic: the same seed and scale reproduce the
// registry text byte for byte.
func runMetricsDemo(sw harness.Sweep, mflags *cli.MetricsFlags) {
	w := workloads.DefaultCollPerf()
	aggs := 16
	if n := sw.Cluster.Nodes * sw.Cluster.RanksPerNode; aggs > n {
		aggs = n
	}
	spec := harness.DefaultSpec(w, harness.CacheEnabled, aggs, 16<<20)
	spec.Cluster = sw.Cluster
	spec.NFiles = sw.NFiles
	spec.ComputeDelay = sw.Compute
	spec.FaultSpec = sw.FaultSpec
	mflags.Apply(&spec)
	res, err := harness.Run(spec)
	if err != nil {
		fatalf("metrics: %v", err)
	}
	fmt.Printf("measured %s cell=%s case=%s: %.2f GB/s, %.2f s simulated\n",
		w.Name(), spec.Label(), spec.Case, res.BandwidthGBs, res.WallTime.Seconds())
	if err := mflags.Report(os.Stdout, res); err != nil {
		fatalf("%v", err)
	}
}

func byteLabel(n int64) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%dMB", n>>20)
	}
	return fmt.Sprintf("%dKB", n>>10)
}
