package repro

import (
	"testing"

	"repro/internal/adio"
	"repro/internal/harness"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// The benchmarks below regenerate each figure of the paper's evaluation at
// a proportionally reduced scale (16 nodes × 8 ranks, ~1 GB files) so that
// `go test -bench=.` completes in minutes; `cmd/e10bench -sweep paper`
// produces the full 512-rank, 32 GB-file grids. Every benchmark reports
// the perceived bandwidth of Equation 2 as the GB/s metric, and the
// breakdown benchmarks additionally report the stacked phase times.

// benchWorkloads holds reduced-scale versions of the three benchmarks.
func benchCollPerf() workloads.CollPerf {
	return workloads.CollPerf{RunBytes: 128 << 10, RunsY: 8, RunsZ: 8} // 8 MB/proc
}

func benchFlashIO() workloads.FlashIO {
	return workloads.FlashIO{BlocksPerProc: 10, ZonesPerBlock: 16 * 16 * 16, Vars: 24, BytesPerZone: 8}
}

func benchIOR() workloads.IOR {
	return workloads.IOR{BlockBytes: 2 << 20, Segments: 4}
}

// benchSpec builds a reduced-scale spec for one cell.
func benchSpec(w workloads.Workload, cs harness.Case, aggs int, cb int64, lastSync bool) harness.Spec {
	spec := harness.DefaultSpec(w, cs, aggs, cb)
	spec.Cluster = harness.Scaled(20160901, 16, 8)
	spec.NFiles = 2
	spec.ComputeDelay = 4 * sim.Second
	spec.IncludeLastSync = lastSync
	return spec
}

// runCell executes one cell per benchmark iteration and reports GB/s.
func runCell(b *testing.B, spec harness.Spec) *harness.Result {
	b.Helper()
	var last *harness.Result
	for i := 0; i < b.N; i++ {
		res, err := harness.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.BandwidthGBs, "GB/s")
	return last
}

// reportBreakdown attaches the stacked phase seconds as custom metrics.
func reportBreakdown(b *testing.B, res *harness.Result) {
	b.Helper()
	for ph, d := range res.Breakdown {
		if d > 0 {
			b.ReportMetric(d.Seconds(), string(ph)+"_s")
		}
	}
}

// ---- Figure 4: coll_perf perceived bandwidth, three cases ----

func BenchmarkFig4CollPerfBandwidthCacheDisabled(b *testing.B) {
	runCell(b, benchSpec(benchCollPerf(), harness.CacheDisabled, 16, 4<<20, false))
}

func BenchmarkFig4CollPerfBandwidthCacheEnabled(b *testing.B) {
	runCell(b, benchSpec(benchCollPerf(), harness.CacheEnabled, 16, 4<<20, false))
}

func BenchmarkFig4CollPerfBandwidthTheoretical(b *testing.B) {
	runCell(b, benchSpec(benchCollPerf(), harness.CacheTheoretical, 16, 4<<20, false))
}

func BenchmarkFig4CollPerfFewAggregators(b *testing.B) {
	// The cell where the paper shows the cache failing to hide the sync.
	spec := benchSpec(benchCollPerf(), harness.CacheEnabled, 2, 4<<20, false)
	spec.ComputeDelay = sim.Second
	res := runCell(b, spec)
	b.ReportMetric(res.Breakdown["not_hidden_sync"].Seconds(), "not_hidden_sync_s")
}

// ---- Figure 5/6: coll_perf breakdowns ----

func BenchmarkFig5CollPerfBreakdownCacheEnabled(b *testing.B) {
	res := runCell(b, benchSpec(benchCollPerf(), harness.CacheEnabled, 16, 4<<20, false))
	reportBreakdown(b, res)
}

func BenchmarkFig6CollPerfBreakdownCacheDisabled(b *testing.B) {
	res := runCell(b, benchSpec(benchCollPerf(), harness.CacheDisabled, 16, 4<<20, false))
	reportBreakdown(b, res)
}

// ---- Figure 7/8: Flash-IO ----

func BenchmarkFig7FlashIOBandwidthCacheDisabled(b *testing.B) {
	runCell(b, benchSpec(benchFlashIO(), harness.CacheDisabled, 16, 4<<20, false))
}

func BenchmarkFig7FlashIOBandwidthCacheEnabled(b *testing.B) {
	runCell(b, benchSpec(benchFlashIO(), harness.CacheEnabled, 16, 4<<20, false))
}

func BenchmarkFig7FlashIOBandwidthTheoretical(b *testing.B) {
	runCell(b, benchSpec(benchFlashIO(), harness.CacheTheoretical, 16, 4<<20, false))
}

func BenchmarkFig8FlashIOBreakdownCacheEnabled(b *testing.B) {
	res := runCell(b, benchSpec(benchFlashIO(), harness.CacheEnabled, 16, 4<<20, false))
	reportBreakdown(b, res)
}

// ---- Figure 9/10: IOR (last write's sync included) ----

func BenchmarkFig9IORBandwidthCacheDisabled(b *testing.B) {
	runCell(b, benchSpec(benchIOR(), harness.CacheDisabled, 16, 4<<20, true))
}

func BenchmarkFig9IORBandwidthCacheEnabled(b *testing.B) {
	runCell(b, benchSpec(benchIOR(), harness.CacheEnabled, 16, 4<<20, true))
}

func BenchmarkFig9IORBandwidthTheoretical(b *testing.B) {
	runCell(b, benchSpec(benchIOR(), harness.CacheTheoretical, 16, 4<<20, true))
}

func BenchmarkFig10IORBreakdownCacheEnabled(b *testing.B) {
	res := runCell(b, benchSpec(benchIOR(), harness.CacheEnabled, 16, 4<<20, true))
	reportBreakdown(b, res)
}

// ---- Ablations on the design choices called out in DESIGN.md ----

// BenchmarkAblationSyncBuffer sweeps ind_wr_buffer_size: small sync
// buffers pay per-chunk overheads in the serialized read→write pipeline.
func BenchmarkAblationSyncBuffer(b *testing.B) {
	for _, buf := range []int64{128 << 10, 512 << 10, 2 << 20} {
		buf := buf
		b.Run(byteLabel(buf), func(b *testing.B) {
			spec := benchSpec(benchCollPerf(), harness.CacheEnabled, 2, 4<<20, true)
			spec.ComputeDelay = sim.Second
			spec.SyncBuffer = buf
			runCell(b, spec)
		})
	}
}

// BenchmarkAblationFlushPolicy compares flush_immediate (overlap with
// compute) against flush_onclose (all sync exposed at close).
func BenchmarkAblationFlushPolicy(b *testing.B) {
	for _, flag := range []string{"flush_immediate", "flush_onclose"} {
		flag := flag
		b.Run(flag, func(b *testing.B) {
			spec := benchSpec(benchCollPerf(), harness.CacheEnabled, 8, 4<<20, true)
			spec.FlushFlag = flag
			runCell(b, spec)
		})
	}
}

// BenchmarkAblationAggregatorCount is the paper's central knob.
func BenchmarkAblationAggregatorCount(b *testing.B) {
	for _, aggs := range []int{2, 4, 8, 16, 32} {
		aggs := aggs
		b.Run(intLabel(aggs), func(b *testing.B) {
			spec := benchSpec(benchCollPerf(), harness.CacheEnabled, aggs, 4<<20, false)
			spec.ComputeDelay = 2 * sim.Second
			runCell(b, spec)
		})
	}
}

// BenchmarkAblationCollBufferSize varies cb_buffer_size; with the cache the
// paper observes that large buffers stop mattering (memory pressure win).
func BenchmarkAblationCollBufferSize(b *testing.B) {
	for _, cb := range []int64{1 << 20, 4 << 20, 16 << 20} {
		cb := cb
		for _, cs := range []harness.Case{harness.CacheDisabled, harness.CacheEnabled} {
			cs := cs
			b.Run(string(cs)+"/"+byteLabel(cb), func(b *testing.B) {
				res := runCell(b, benchSpec(benchCollPerf(), cs, 16, cb, false))
				b.ReportMetric(float64(res.PeakBufBytes)/(1<<20), "peak_buf_MB")
			})
		}
	}
}

// BenchmarkAblationAggregatorPlacement compares the default one-per-node
// aggregator spread against cb_config_list packing, which makes
// aggregators share NICs and SSDs.
func BenchmarkAblationAggregatorPlacement(b *testing.B) {
	for _, placement := range []struct{ name, cfg string }{
		{"spread", ""},
		{"packed", "*:8"},
	} {
		placement := placement
		b.Run(placement.name, func(b *testing.B) {
			spec := benchSpec(benchCollPerf(), harness.CacheEnabled, 8, 4<<20, false)
			if placement.cfg != "" {
				spec.ExtraHints = map[string]string{adio.HintCBConfigList: placement.cfg}
			}
			runCell(b, spec)
		})
	}
}

// BenchmarkComparisonBurstBuffer pits the paper's node-local cache against
// the §V comparator: a fixed tier of dedicated NVMe burst-buffer proxies.
// Node-local cache bandwidth scales with compute nodes; the burst buffer
// is capped by its proxy count — the paper's scalability argument.
func BenchmarkComparisonBurstBuffer(b *testing.B) {
	cases := []struct {
		name string
		cs   harness.Case
	}{
		{"node-local-cache", harness.CacheEnabled},
		{"burst-buffer-2proxies", harness.BurstBuffer},
		{"pfs-direct", harness.CacheDisabled},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			runCell(b, benchSpec(benchCollPerf(), c.cs, 16, 4<<20, false))
		})
	}
}

// ---- Observability ----

// BenchmarkTracingOverhead runs the same cell with the event tracer off and
// on. The delta is the real (host-CPU) cost of recording ~10^5 events; the
// simulated numbers are identical either way (see harness.TestTracingDoesNotPerturb).
func BenchmarkTracingOverhead(b *testing.B) {
	for _, traced := range []struct {
		name string
		on   bool
	}{{"off", false}, {"on", true}} {
		traced := traced
		b.Run(traced.name, func(b *testing.B) {
			spec := benchSpec(benchCollPerf(), harness.CacheEnabled, 16, 4<<20, false)
			spec.TraceEvents = traced.on
			res := runCell(b, spec)
			if traced.on {
				b.ReportMetric(float64(res.Trace.Len()), "events")
			}
		})
	}
}

// ---- Substrate micro-benchmarks ----

// BenchmarkTwoPhaseExchange measures the raw ext2ph machinery (simulator
// throughput, not simulated bandwidth): events processed per second for a
// 128-rank collective write.
func BenchmarkTwoPhaseExchange(b *testing.B) {
	runCell(b, benchSpec(benchCollPerf(), harness.CacheDisabled, 8, 4<<20, false))
}

// BenchmarkCollectives measures the message-passing collective algorithms.
func BenchmarkCollectives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cl := harness.NewCluster(harness.Scaled(1, 8, 4))
		c := cl.World.Comm()
		c.SetCollModel(mpi.MessagePassing)
		err := cl.World.Run(func(r *mpi.Rank) {
			for it := 0; it < 10; it++ {
				c.Allreduce(r, []int64{int64(r.ID())}, mpi.MaxOp)
				send := make([]int64, c.Size())
				c.Alltoall(r, send)
				c.Barrier(r)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Table I / II: hint parsing (definitional tables) ----

func BenchmarkTableIHintParsing(b *testing.B) {
	info := mpi.Info{
		adio.HintCBWrite: "enable", adio.HintCBNodes: "64",
		adio.HintCBBufferSize: "16777216", adio.HintStripingUnit: "4194304",
	}
	for i := 0; i < b.N; i++ {
		if _, err := adio.ParseHints(info, 512); err != nil {
			b.Fatal(err)
		}
	}
}

func byteLabel(n int64) string {
	switch {
	case n >= 1<<20:
		return intLabel(int(n>>20)) + "MB"
	default:
		return intLabel(int(n>>10)) + "KB"
	}
}

func intLabel(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
