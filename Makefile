# Tier-1 gate plus static, race and coverage checks; see scripts/check.sh.
.PHONY: check check-full test build vet fmt-check cover trace-demo

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Fail if any file is not gofmt-clean.
fmt-check:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

# Total statement coverage, printed per function and as a total.
cover:
	go test -count=1 -coverprofile=cover.out ./...
	go tool cover -func=cover.out | tail -20

# Trace one representative cache-enabled coll_perf cell to trace.json;
# open the file with https://ui.perfetto.dev (byte-reproducible per seed).
trace-demo:
	go run ./cmd/e10bench -trace trace.json -scale 8x4 -files 2

check:
	scripts/check.sh

check-full:
	scripts/check.sh -full
