# Tier-1 gate plus static and race checks; see scripts/check.sh.
.PHONY: check check-full test build vet

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

check:
	scripts/check.sh

check-full:
	scripts/check.sh -full
