# Tier-1 gate plus static, race and coverage checks; see scripts/check.sh.
.PHONY: check check-full test build vet fmt-check cover trace-demo \
	critpath-demo bench-record bench-compare scale-bench-record \
	scale-smoke scale chaos chaos-smoke chaos-failover chaos-tenants \
	chaos-corrupt

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Fail if any file is not gofmt-clean.
fmt-check:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

# Total statement coverage, printed per function and as a total.
cover:
	go test -count=1 -coverprofile=cover.out ./...
	go tool cover -func=cover.out | tail -20

# Trace one representative cache-enabled coll_perf cell to trace.json;
# open the file with https://ui.perfetto.dev (byte-reproducible per seed).
trace-demo:
	go run ./cmd/e10bench -trace trace.json -scale 8x4 -files 2

# Critical-path report plus 24-bucket run timeline for the same
# representative cell (post-hoc analysis; byte-reproducible per seed).
critpath-demo:
	go run ./cmd/e10bench -critpath -timeline 24 -scale 8x4 -files 2

# Deterministic chaos soak: 200 seeded workload/fault scenarios checked
# against the end-to-end integrity oracles (byte conservation, lost acks,
# journal idempotence, lock release, liveness, trace/metrics consistency).
# The report is byte-identical per (seed, iters); a failure is shrunk to a
# minimal replayable chaos_repro.json (replay: e10chaos -replay <file>).
chaos:
	go run ./cmd/e10chaos -iters 200 -seed 1

# Failover-focused soak: degraded-mode collective scenarios only (lossy
# links, duplication, partitions, aggregator crashes).
chaos-failover:
	go run ./cmd/e10chaos -iters 200 -seed 7 -netfaults

# Multi-tenant service-mode soak: several jobs contending for undersized
# shared NVM under quotas, reservations, queued admissions, mid-flush
# tenant crashes and NVM faults, checked by the tenant_isolation oracle
# (every unfaulted tenant's file byte-identical to a solo same-seed run).
chaos-tenants:
	go run ./cmd/e10chaos -iters 200 -seed 11 -tenants

# Silent-corruption soak: crash-then-corrupt scenarios only (torn journal
# appends and at-rest NVM bit-rot ahead of recovery), exercising the
# checksummed scrub-and-repair path and its quarantine accounting.
chaos-corrupt:
	go run ./cmd/e10chaos -iters 200 -seed 13 -corrupt

# The quick variant check.sh runs on every gate.
chaos-smoke:
	go run ./cmd/e10chaos -iters 25 -seed 1

# Run the fixed 18-scenario regression matrix and commit the baseline.
# The simulation is deterministic, so the file is reproducible per seed.
bench-record:
	go run ./cmd/e10bench -bench-record BENCH_$$(date +%Y-%m-%d).json

# Re-run the matrix and gate against the newest committed baseline
# (>2% virtual wall-time regression on any scenario fails). The glob
# excludes the BENCH_SCALE_*.json kilo-rank baselines, which e10bench
# gates separately as part of the same -bench-compare invocation.
bench-compare:
	@base=$$(ls BENCH_*.json 2>/dev/null | grep -v '^BENCH_SCALE_' | sort | tail -1); \
	if [ -z "$$base" ]; then echo "no BENCH_*.json baseline; run 'make bench-record' first" >&2; exit 1; fi; \
	go run ./cmd/e10bench -bench-compare "$$base"

# Record the kilo-rank kernel-throughput baseline: the deterministic
# 4096-rank report digest plus a conservative events/sec floor.
scale-bench-record:
	go run ./cmd/e10bench -scale-bench-record BENCH_SCALE_$$(date +%Y-%m-%d).json

# Kilo-rank smoke: the TestScale_ suite at its default 1024 ranks —
# clean, lossy and aggregator-crash collective writes gated on byte
# conservation, determinism and the committed digests.
scale-smoke:
	go test ./internal/harness -run '^TestScale_' -count=1 -timeout 300s

# Kilo-rank soak: the same suite at 4096 ranks (512 nodes x 8).
scale:
	go test ./internal/harness -run '^TestScale_' -count=1 -timeout 600s -scale.ranks=4096 -v

check:
	scripts/check.sh

check-full:
	scripts/check.sh -full
