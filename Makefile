# Tier-1 gate plus static, race and coverage checks; see scripts/check.sh.
.PHONY: check check-full test build vet fmt-check cover trace-demo \
	bench-record bench-compare chaos chaos-smoke chaos-failover chaos-tenants

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Fail if any file is not gofmt-clean.
fmt-check:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

# Total statement coverage, printed per function and as a total.
cover:
	go test -count=1 -coverprofile=cover.out ./...
	go tool cover -func=cover.out | tail -20

# Trace one representative cache-enabled coll_perf cell to trace.json;
# open the file with https://ui.perfetto.dev (byte-reproducible per seed).
trace-demo:
	go run ./cmd/e10bench -trace trace.json -scale 8x4 -files 2

# Deterministic chaos soak: 200 seeded workload/fault scenarios checked
# against the end-to-end integrity oracles (byte conservation, lost acks,
# journal idempotence, lock release, liveness, trace/metrics consistency).
# The report is byte-identical per (seed, iters); a failure is shrunk to a
# minimal replayable chaos_repro.json (replay: e10chaos -replay <file>).
chaos:
	go run ./cmd/e10chaos -iters 200 -seed 1

# Failover-focused soak: degraded-mode collective scenarios only (lossy
# links, duplication, partitions, aggregator crashes).
chaos-failover:
	go run ./cmd/e10chaos -iters 200 -seed 7 -netfaults

# Multi-tenant service-mode soak: several jobs contending for undersized
# shared NVM under quotas, reservations, queued admissions, mid-flush
# tenant crashes and NVM faults, checked by the tenant_isolation oracle
# (every unfaulted tenant's file byte-identical to a solo same-seed run).
chaos-tenants:
	go run ./cmd/e10chaos -iters 200 -seed 11 -tenants

# The quick variant check.sh runs on every gate.
chaos-smoke:
	go run ./cmd/e10chaos -iters 25 -seed 1

# Run the fixed 18-scenario regression matrix and commit the baseline.
# The simulation is deterministic, so the file is reproducible per seed.
bench-record:
	go run ./cmd/e10bench -bench-record BENCH_$$(date +%Y-%m-%d).json

# Re-run the matrix and gate against the newest committed baseline
# (>2% virtual wall-time regression on any scenario fails).
bench-compare:
	@base=$$(ls BENCH_*.json 2>/dev/null | sort | tail -1); \
	if [ -z "$$base" ]; then echo "no BENCH_*.json baseline; run 'make bench-record' first" >&2; exit 1; fi; \
	go run ./cmd/e10bench -bench-compare "$$base"

check:
	scripts/check.sh

check-full:
	scripts/check.sh -full
